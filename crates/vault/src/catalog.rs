//! The content index: the vault's `table → compressed chunk → frame
//! range` catalog, serialized as a self-delimiting plain-text stream.
//!
//! The index is written on the medium as its own emblem stream (kind
//! [`ule_emblem::EmblemKind::Index`], outer-parity protected), so a
//! reader can decode a few index frames and then jump straight to the
//! frames that carry one table. The serialization is plain text in the
//! spirit of the Bootstrap document — a future restorer can read it with
//! their eyes:
//!
//! ```text
//! ULE VAULT INDEX 1
//! chunk: 1115
//! segments: 10
//! seg: name=lineitem archive=8200+41833 dump=31650+152113 crc32=9fe2a1b0
//! ...
//! end: crc32=deadbeef
//! ```
//!
//! `archive=<start>+<len>` is the byte range of the segment's record
//! run (one or more 4-byte little-endian length prefixes, each followed
//! by a `ULEA` container) inside the data stream; `dump=<start>+<len>`
//! is the byte range of the original segment in the restored dump;
//! `crc32` is the CRC-32 of those original bytes, so a selectively
//! restored table can be verified without restoring anything else. The
//! trailing `end:` line carries the CRC-32 of every byte before it —
//! the self-check consulted before any frame range is trusted.
//!
//! ## Zone maps (optional, PR 8)
//!
//! A table entry may additionally carry per-sub-record **zone maps**:
//!
//! ```text
//! seg: name=lineitem archive=... dump=... crc32=... \
//!      zcols=l_shipdate,l_quantity \
//!      zones=27:23:0|2101:6479:60:1992-01-08:1998-10-24:1:50|...
//! ```
//!
//! `zcols` names the columns whose min/max each zone records; `zones` is
//! a `|`-separated list, one item per independently compressed
//! sub-record of the segment, each item `:`-separated as
//! `archive_len:dump_len:rows[:min:max per zcol]`. Zones with `rows=0`
//! are *structural* (the `COPY` header line, the `\.` terminator) and
//! are never pruned. Values are percent-escaped so `:`/`|`/whitespace in
//! row data cannot break the framing. The zone archive/dump lengths tile
//! the entry's own spans exactly; [`ContentIndex::parse`] rejects
//! anything else, and readers of old catalogs simply see entries with no
//! zones (`zones()` returns the single whole-entry span).

use std::fmt::Write as _;
use ule_gf256::crc::crc32;

/// One zone: a row-aligned, independently compressed sub-record of a
/// segment, with min/max statistics over the catalogued zone columns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ZoneInfo {
    /// Length of the sub-record (4-byte prefix + container) in the data
    /// stream. Zone archive spans tile the entry's archive span in order.
    pub archive_len: u64,
    /// Length of the sub-record's original dump bytes. Zone dump spans
    /// tile the entry's dump span in order.
    pub dump_len: u64,
    /// Data rows in this zone. `0` marks a structural zone (the `COPY`
    /// header line or the `\.` terminator) that is never pruned.
    pub rows: u64,
    /// `(min, max)` raw field text per entry in the entry's `zcols`, in
    /// the same order. Empty for structural zones.
    pub stats: Vec<(String, String)>,
}

/// One catalogued segment (a table's `COPY` block, or filler text).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexEntry {
    /// Segment name (table name, or `_`-prefixed filler).
    pub name: String,
    /// Byte offset of the segment's record run in the data stream.
    pub archive_start: u64,
    /// Record-run length in bytes (length prefixes + containers).
    pub archive_len: u64,
    /// Byte offset of the segment in the original dump.
    pub dump_start: u64,
    /// Segment length in the original dump.
    pub dump_len: u64,
    /// CRC-32 of the original segment bytes.
    pub crc32: u32,
    /// Columns the zone min/max statistics cover (empty = no zone maps).
    pub zone_columns: Vec<String>,
    /// Per-sub-record zone maps (empty = one opaque record, no pruning).
    pub zones: Vec<ZoneInfo>,
}

/// The full catalog.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContentIndex {
    /// Payload bytes per emblem (the chunk size frame ranges are in).
    pub chunk_cap: u32,
    /// Entries in dump order (their archive ranges tile the data stream).
    pub entries: Vec<IndexEntry>,
}

/// Index (de)serialization failures.
#[derive(Debug, PartialEq, Eq)]
pub enum IndexError {
    /// Missing or wrong magic/version line.
    BadMagic,
    /// A header or entry line failed to parse.
    BadLine(String),
    /// Entry count disagrees with the `segments:` header.
    CountMismatch { expected: usize, got: usize },
    /// The trailing CRC does not match the preceding bytes.
    BadCrc { stored: u32, computed: u32 },
    /// No `end:` trailer found.
    Truncated,
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::BadMagic => write!(f, "not a vault index (bad magic)"),
            IndexError::BadLine(l) => write!(f, "unparseable index line: {l:?}"),
            IndexError::CountMismatch { expected, got } => {
                write!(f, "index promises {expected} segments, holds {got}")
            }
            IndexError::BadCrc { stored, computed } => {
                write!(
                    f,
                    "index crc mismatch: stored {stored:08x}, computed {computed:08x}"
                )
            }
            IndexError::Truncated => write!(f, "index stream ends before the end: trailer"),
        }
    }
}

impl std::error::Error for IndexError {}

const MAGIC_LINE: &str = "ULE VAULT INDEX 1";

/// Percent-escape a zone value so `:`/`|`/whitespace/`=` in row data can
/// never break the entry-line framing.
fn escape_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for b in v.bytes() {
        match b {
            b'%' | b':' | b'|' | b'=' | b' ' | b'\t' | b'\r' | b'\n' => {
                out.push('%');
                out.push_str(&format!("{b:02X}"));
            }
            _ => out.push(b as char),
        }
    }
    out
}

/// Inverse of [`escape_value`]. Rejects malformed escapes.
fn unescape_value(v: &str) -> Option<String> {
    let bytes = v.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            let s = std::str::from_utf8(hex).ok()?;
            out.push(u8::from_str_radix(s, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

impl ContentIndex {
    /// Serialize to the self-delimiting text format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = String::new();
        writeln!(out, "{MAGIC_LINE}").unwrap();
        writeln!(out, "chunk: {}", self.chunk_cap).unwrap();
        writeln!(out, "segments: {}", self.entries.len()).unwrap();
        for e in &self.entries {
            write!(
                out,
                "seg: name={} archive={}+{} dump={}+{} crc32={:08x}",
                e.name, e.archive_start, e.archive_len, e.dump_start, e.dump_len, e.crc32
            )
            .unwrap();
            if !e.zones.is_empty() {
                let cols: Vec<String> = e.zone_columns.iter().map(|c| escape_value(c)).collect();
                write!(out, " zcols={}", cols.join(",")).unwrap();
                let items: Vec<String> = e
                    .zones
                    .iter()
                    .map(|z| {
                        let mut item = format!("{}:{}:{}", z.archive_len, z.dump_len, z.rows);
                        for (lo, hi) in &z.stats {
                            item.push(':');
                            item.push_str(&escape_value(lo));
                            item.push(':');
                            item.push_str(&escape_value(hi));
                        }
                        item
                    })
                    .collect();
                write!(out, " zones={}", items.join("|")).unwrap();
            }
            writeln!(out).unwrap();
        }
        let body_crc = crc32(out.as_bytes());
        writeln!(out, "end: crc32={body_crc:08x}").unwrap();
        out.into_bytes()
    }

    /// Parse and verify a serialized index. Trailing bytes after the
    /// `end:` line are ignored (the emblem stream may pad).
    pub fn parse(bytes: &[u8]) -> Result<ContentIndex, IndexError> {
        let text = String::from_utf8_lossy(bytes);
        let mut lines = text.lines();
        if lines.next() != Some(MAGIC_LINE) {
            return Err(IndexError::BadMagic);
        }
        let chunk_line = lines.next().ok_or(IndexError::Truncated)?;
        let chunk_cap: u32 = chunk_line
            .strip_prefix("chunk: ")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| IndexError::BadLine(chunk_line.to_string()))?;
        let count_line = lines.next().ok_or(IndexError::Truncated)?;
        let expected: usize = count_line
            .strip_prefix("segments: ")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| IndexError::BadLine(count_line.to_string()))?;
        let mut entries = Vec::with_capacity(expected);
        let mut end_crc = None;
        for line in lines {
            if let Some(v) = line.strip_prefix("end: crc32=") {
                end_crc = Some(
                    u32::from_str_radix(v.trim(), 16)
                        .map_err(|_| IndexError::BadLine(line.to_string()))?,
                );
                break;
            }
            let rest = line
                .strip_prefix("seg: ")
                .ok_or_else(|| IndexError::BadLine(line.to_string()))?;
            entries.push(parse_entry(rest).ok_or_else(|| IndexError::BadLine(line.to_string()))?);
        }
        let stored = end_crc.ok_or(IndexError::Truncated)?;
        // The CRC covers everything up to (not including) the end line.
        // The offset must come from the raw bytes: invalid UTF-8 expands
        // to 3-byte replacement chars in the lossy text, so a text offset
        // can point past the end of `bytes`.
        let end_pos = find_line_start(bytes, b"end: crc32=").ok_or(IndexError::Truncated)?;
        let computed = crc32(&bytes[..end_pos]);
        if computed != stored {
            return Err(IndexError::BadCrc { stored, computed });
        }
        if entries.len() != expected {
            return Err(IndexError::CountMismatch {
                expected,
                got: entries.len(),
            });
        }
        Ok(ContentIndex { chunk_cap, entries })
    }

    /// Look up a segment by name.
    pub fn find(&self, name: &str) -> Option<&IndexEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Names of the queryable tables (filler segments excluded).
    pub fn tables(&self) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|e| !e.name.starts_with('_'))
            .map(|e| e.name.as_str())
            .collect()
    }

    /// Data-stream chunk indices covering `entry`'s archive byte range —
    /// the chunks (and hence frames) a selective restore must decode.
    /// An empty entry covers no chunks.
    pub fn chunk_range(&self, entry: &IndexEntry) -> std::ops::Range<usize> {
        self.chunk_span(entry.archive_start, entry.archive_len)
    }

    /// Chunk indices covering an arbitrary archive byte span. A span
    /// ending exactly on a chunk boundary claims nothing from the next
    /// chunk; an empty span claims no chunks at all. Safe on hostile
    /// offsets: the sum saturates instead of overflowing.
    pub fn chunk_span(&self, start: u64, len: u64) -> std::ops::Range<usize> {
        let cap = self.chunk_cap.max(1) as u64;
        let first = start / cap;
        if len == 0 {
            return first as usize..first as usize;
        }
        let last = start.saturating_add(len).div_ceil(cap);
        first as usize..last as usize
    }
}

/// One zone of an entry with its absolute archive/dump byte spans
/// resolved (see [`IndexEntry::zone_spans`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ZoneSpan<'a> {
    pub archive_start: u64,
    pub dump_start: u64,
    pub info: &'a ZoneInfo,
}

impl IndexEntry {
    /// Walk the entry's zones cumulatively from its own offsets,
    /// returning each zone with absolute archive/dump spans. Returns
    /// `None` for entries without zones, or whose zones fail to tile the
    /// entry's archive/dump spans exactly (a hostile or damaged catalog —
    /// callers must fall back to the unpruned whole-entry path).
    pub fn zone_spans(&self) -> Option<Vec<ZoneSpan<'_>>> {
        if self.zones.is_empty() {
            return None;
        }
        let mut archive = self.archive_start;
        let mut dump = self.dump_start;
        let mut spans = Vec::with_capacity(self.zones.len());
        for z in &self.zones {
            spans.push(ZoneSpan {
                archive_start: archive,
                dump_start: dump,
                info: z,
            });
            archive = archive.checked_add(z.archive_len)?;
            dump = dump.checked_add(z.dump_len)?;
        }
        let archive_end = self.archive_start.checked_add(self.archive_len)?;
        let dump_end = self.dump_start.checked_add(self.dump_len)?;
        if archive != archive_end || dump != dump_end {
            return None;
        }
        Some(spans)
    }
}

/// Byte offset of the first line starting with `marker` ('\n' bytes are
/// preserved 1:1 by lossy UTF-8 decoding, so raw line starts coincide with
/// text line starts).
fn find_line_start(bytes: &[u8], marker: &[u8]) -> Option<usize> {
    if bytes.starts_with(marker) {
        return Some(0);
    }
    bytes
        .windows(marker.len() + 1)
        .position(|w| w[0] == b'\n' && &w[1..] == marker)
        .map(|p| p + 1)
}

fn parse_entry(rest: &str) -> Option<IndexEntry> {
    let mut name = None;
    let mut archive = None;
    let mut dump = None;
    let mut crc = None;
    let mut zcols: Vec<String> = Vec::new();
    let mut zones_field = None;
    for pair in rest.split_whitespace() {
        let (k, v) = pair.split_once('=')?;
        match k {
            "name" => name = Some(v.to_string()),
            "archive" => archive = parse_span(v),
            "dump" => dump = parse_span(v),
            "crc32" => crc = u32::from_str_radix(v, 16).ok(),
            "zcols" => {
                zcols = v
                    .split(',')
                    .map(unescape_value)
                    .collect::<Option<Vec<_>>>()?
            }
            "zones" => zones_field = Some(v),
            _ => return None,
        }
    }
    let (archive_start, archive_len) = archive?;
    let (dump_start, dump_len) = dump?;
    let zones = match zones_field {
        None => Vec::new(),
        Some(v) => parse_zones(v, zcols.len())?,
    };
    let entry = IndexEntry {
        name: name?,
        archive_start,
        archive_len,
        dump_start,
        dump_len,
        crc32: crc?,
        zone_columns: zcols,
        zones,
    };
    // Zones that fail to tile the entry's own spans are a structural lie;
    // reject the line rather than hand planners inconsistent offsets.
    if !entry.zones.is_empty() && entry.zone_spans().is_none() {
        return None;
    }
    Some(entry)
}

/// Parse a `zones=` field: `|`-separated items, each
/// `archive_len:dump_len:rows[:min:max per zone column]`.
fn parse_zones(v: &str, ncols: usize) -> Option<Vec<ZoneInfo>> {
    let mut zones = Vec::new();
    for item in v.split('|') {
        let fields: Vec<&str> = item.split(':').collect();
        if fields.len() != 3 && fields.len() != 3 + 2 * ncols {
            return None;
        }
        let archive_len: u64 = fields[0].parse().ok()?;
        let dump_len: u64 = fields[1].parse().ok()?;
        let rows: u64 = fields[2].parse().ok()?;
        let mut stats = Vec::new();
        for pair in fields[3..].chunks(2) {
            stats.push((unescape_value(pair[0])?, unescape_value(pair[1])?));
        }
        zones.push(ZoneInfo {
            archive_len,
            dump_len,
            rows,
            stats,
        });
    }
    Some(zones)
}

fn parse_span(v: &str) -> Option<(u64, u64)> {
    let (a, b) = v.split_once('+')?;
    Some((a.parse().ok()?, b.parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plain_entry(name: &str, archive: (u64, u64), dump: (u64, u64), crc: u32) -> IndexEntry {
        IndexEntry {
            name: name.into(),
            archive_start: archive.0,
            archive_len: archive.1,
            dump_start: dump.0,
            dump_len: dump.1,
            crc32: crc,
            zone_columns: Vec::new(),
            zones: Vec::new(),
        }
    }

    fn sample() -> ContentIndex {
        ContentIndex {
            chunk_cap: 1115,
            entries: vec![
                plain_entry("_preamble", (0, 180), (0, 400), 0x1111_2222),
                plain_entry("lineitem", (180, 41_833), (400, 152_113), 0x9FE2_A1B0),
            ],
        }
    }

    fn zoned_sample() -> ContentIndex {
        let mut entry = plain_entry("lineitem", (180, 600), (400, 2_000), 0x9FE2_A1B0);
        entry.zone_columns = vec!["l_shipdate".into(), "l_quantity".into()];
        entry.zones = vec![
            ZoneInfo {
                archive_len: 40,
                dump_len: 70,
                rows: 0,
                stats: vec![],
            },
            ZoneInfo {
                archive_len: 300,
                dump_len: 1_000,
                rows: 12,
                stats: vec![
                    ("1992-01-08".into(), "1995-06-17".into()),
                    ("1".into(), "50".into()),
                ],
            },
            ZoneInfo {
                archive_len: 240,
                dump_len: 927,
                rows: 11,
                stats: vec![
                    ("1995-06-18".into(), "1998-10-24".into()),
                    ("3".into(), "48".into()),
                ],
            },
            ZoneInfo {
                archive_len: 20,
                dump_len: 3,
                rows: 0,
                stats: vec![],
            },
        ];
        ContentIndex {
            chunk_cap: 256,
            entries: vec![
                plain_entry("_preamble", (0, 180), (0, 400), 0x1111_2222),
                entry,
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let idx = sample();
        let bytes = idx.to_bytes();
        assert_eq!(ContentIndex::parse(&bytes).unwrap(), idx);
    }

    #[test]
    fn trailing_padding_is_ignored() {
        let idx = sample();
        let mut bytes = idx.to_bytes();
        bytes.extend_from_slice(&[0u8; 37]);
        assert_eq!(ContentIndex::parse(&bytes).unwrap(), idx);
    }

    #[test]
    fn corruption_is_detected() {
        let idx = sample();
        let mut bytes = idx.to_bytes();
        // Flip a digit inside an entry line.
        let pos = bytes.iter().position(|&b| b == b'8').unwrap();
        bytes[pos] = b'9';
        match ContentIndex::parse(&bytes) {
            Err(IndexError::BadCrc { .. }) | Err(IndexError::BadLine(_)) => {}
            other => panic!("expected corruption error, got {other:?}"),
        }
    }

    #[test]
    fn invalid_utf8_in_names_errors_instead_of_panicking() {
        // Fuzz regression: invalid UTF-8 expands to 3-byte replacement
        // chars in the lossy text, so a text-derived CRC slice offset can
        // run past the raw bytes. The CRC range must come from the bytes.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"ULE VAULT INDEX 1\nchunk: 2\nsegments: 2\n");
        bytes.extend_from_slice(b"seg: name=");
        bytes.extend_from_slice(&[0xE1, 0xC4, 0xF6, 0xB1, 0xBB, 0x94, 0xA8]);
        bytes.extend_from_slice(b" archive=4+0 dump=3+6 crc32=d\nend: crc32=8");
        assert!(matches!(
            ContentIndex::parse(&bytes),
            Err(IndexError::BadCrc { .. })
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let idx = sample();
        let bytes = idx.to_bytes();
        assert_eq!(
            ContentIndex::parse(&bytes[..bytes.len() - 20]),
            Err(IndexError::Truncated)
        );
    }

    #[test]
    fn chunk_range_covers_the_archive_span() {
        let idx = sample();
        let li = idx.find("lineitem").unwrap();
        let r = idx.chunk_range(li);
        assert_eq!(r.start, 0); // 180 / 1115 = 0
        assert_eq!(r.end, (180 + 41_833usize).div_ceil(1115));
        assert!(idx.find("nope").is_none());
        assert_eq!(idx.tables(), vec!["lineitem"]);
    }

    #[test]
    fn chunk_range_boundary_math() {
        let idx = ContentIndex {
            chunk_cap: 100,
            entries: vec![],
        };
        let span = |start, len| idx.chunk_span(start, len);
        // Zero-length entries claim no chunks (the old code claimed one
        // full chunk via `last.max(first + 1)`).
        assert_eq!(span(0, 0), 0..0);
        assert_eq!(span(250, 0), 2..2);
        assert_eq!(span(300, 0), 3..3);
        // len == cap, aligned: exactly one chunk.
        assert_eq!(span(200, 100), 2..3);
        // len == cap, unaligned: straddles two chunks.
        assert_eq!(span(250, 100), 2..4);
        // End exactly on a chunk boundary must not claim the next chunk.
        assert_eq!(span(150, 50), 1..2);
        assert_eq!(span(0, 300), 0..3);
        // End one past a boundary claims the chunk it spills into.
        assert_eq!(span(150, 51), 1..3);
        assert_eq!(span(0, 301), 0..4);
        // One byte.
        assert_eq!(span(99, 1), 0..1);
        assert_eq!(span(100, 1), 1..2);
        // Hostile offsets saturate instead of overflowing.
        assert_eq!(span(u64::MAX, 1).start, (u64::MAX / 100) as usize);
        assert_eq!(span(u64::MAX - 1, u64::MAX), span(u64::MAX - 1, 2));
        // A degenerate chunk_cap of 0 is treated as 1, not a division
        // fault.
        let tiny = ContentIndex {
            chunk_cap: 0,
            entries: vec![],
        };
        assert_eq!(tiny.chunk_span(3, 2), 3..5);
    }

    #[test]
    fn zoned_roundtrip_and_spans() {
        let idx = zoned_sample();
        let bytes = idx.to_bytes();
        assert_eq!(ContentIndex::parse(&bytes).unwrap(), idx);
        let li = idx.find("lineitem").unwrap();
        let spans = li.zone_spans().unwrap();
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].archive_start, 180);
        assert_eq!(spans[1].archive_start, 220);
        assert_eq!(spans[1].dump_start, 470);
        assert_eq!(spans[3].archive_start, 180 + 600 - 20);
        // Entries without zones report no spans: callers take the
        // unpruned whole-entry path.
        assert!(idx.find("_preamble").unwrap().zone_spans().is_none());
    }

    #[test]
    fn zone_values_with_separators_survive_escaping() {
        let mut idx = zoned_sample();
        idx.entries[1].zones[1].stats[0] = ("a:b|c d=e%f".into(), "x\ty\nz".into());
        idx.entries[1].zone_columns[0] = "weird col".into();
        let bytes = idx.to_bytes();
        let back = ContentIndex::parse(&bytes).unwrap();
        assert_eq!(back, idx);
    }

    #[test]
    fn zones_that_do_not_tile_the_entry_are_rejected() {
        let mut idx = zoned_sample();
        idx.entries[1].zones[1].archive_len += 1;
        let bytes = idx.to_bytes();
        assert!(matches!(
            ContentIndex::parse(&bytes),
            Err(IndexError::BadLine(_))
        ));
    }

    #[test]
    fn old_format_lines_parse_as_no_zones() {
        let idx = sample();
        let back = ContentIndex::parse(&idx.to_bytes()).unwrap();
        assert!(back.entries.iter().all(|e| e.zones.is_empty()));
        assert!(back.entries.iter().all(|e| e.zone_spans().is_none()));
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            ContentIndex::parse(b"WRONG\nstuff"),
            Err(IndexError::BadMagic)
        );
    }
}
