//! Reel layout: the frozen mapping between stream chunks, global frame
//! positions, and reels.
//!
//! A vault medium carries three content streams in one fixed frame
//! sequence — system (DBDecode), index (catalog), data (segment records)
//! — each laid out by [`ule_emblem::stream::encode_stream`]'s emission
//! order (every group's data emblems followed by its outer-parity
//! emblems). The sequence is split into content reels of
//! `reel_capacity` frames, and every group of `group_reels` content
//! reels gets `group_parity` cross-reel parity reels (the `m` of
//! `RS(k+m, k)`) appended after all content reels, group-major then
//! slot-major.
//!
//! Everything here is *derivable*: given the Bootstrap's vault manifest
//! (stream byte lengths, reel capacity, group size) and the emblem
//! geometry, the layout reconstructs the exact [`EmblemHeader`] of any
//! frame position without decoding it — which is what lets a lost reel's
//! frames be re-encoded bit-for-bit from cross-reel parity.

use micr_olonys::VaultManifest;
use ule_emblem::stream::{GROUP_DATA, GROUP_PARITY};
use ule_emblem::{EmblemHeader, EmblemKind};

/// Which content stream a frame belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamId {
    System,
    Index,
    Data,
}

impl StreamId {
    /// The emblem kind of the stream's *data* slots (parity slots always
    /// carry [`EmblemKind::Parity`]).
    pub fn kind(self) -> EmblemKind {
        match self {
            StreamId::System => EmblemKind::System,
            StreamId::Index => EmblemKind::Index,
            StreamId::Data => EmblemKind::Data,
        }
    }
}

/// Everything known about one global frame position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameInfo {
    pub stream: StreamId,
    /// Emission position within the stream (== the header's `index`).
    pub emission: usize,
    /// The exact header the emblem at this position carries.
    pub header: EmblemHeader,
}

/// The frozen reel layout (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReelLayout {
    /// Payload bytes per emblem.
    pub chunk_cap: usize,
    /// Stream byte lengths.
    pub sys_len: usize,
    pub index_len: usize,
    pub data_len: usize,
    /// Whether the content streams carry the outer RS(20,17) code.
    pub outer_parity: bool,
    /// Frames per content reel (`0` = single reel holding everything).
    pub reel_capacity: usize,
    /// Content reels per parity group (`0` = no parity reels).
    pub group_reels: usize,
    /// Parity reels per group — the `m` of `RS(k+m, k)`.
    pub group_parity: usize,
}

/// Frames of one stream: data chunks plus outer-parity emblems.
fn stream_frames(len: usize, chunk_cap: usize, outer_parity: bool) -> usize {
    let chunks = len.div_ceil(chunk_cap.max(1)).max(1);
    if outer_parity {
        chunks + chunks.div_ceil(GROUP_DATA) * GROUP_PARITY
    } else {
        chunks
    }
}

impl ReelLayout {
    /// Build the layout from a parsed manifest plus the geometry facts the
    /// Bootstrap carries anyway.
    pub fn from_manifest(m: &VaultManifest, chunk_cap: usize, outer_parity: bool) -> Self {
        Self {
            chunk_cap,
            sys_len: m.sys_len,
            index_len: m.index_len,
            data_len: m.data_len,
            outer_parity,
            reel_capacity: m.reel_capacity,
            group_reels: m.group_reels,
            group_parity: m.parity_reels,
        }
    }

    pub fn sys_frames(&self) -> usize {
        stream_frames(self.sys_len, self.chunk_cap, self.outer_parity)
    }
    pub fn index_frames(&self) -> usize {
        stream_frames(self.index_len, self.chunk_cap, self.outer_parity)
    }
    pub fn data_frames(&self) -> usize {
        stream_frames(self.data_len, self.chunk_cap, self.outer_parity)
    }

    /// Total frames across the content reels.
    pub fn total_frames(&self) -> usize {
        self.sys_frames() + self.index_frames() + self.data_frames()
    }

    /// Number of content reels.
    pub fn content_reels(&self) -> usize {
        if self.reel_capacity == 0 {
            1
        } else {
            self.total_frames().div_ceil(self.reel_capacity).max(1)
        }
    }

    /// Number of parity groups (full or partial).
    pub fn groups(&self) -> usize {
        if self.group_reels == 0 || self.reel_capacity == 0 {
            0
        } else {
            self.content_reels().div_ceil(self.group_reels)
        }
    }

    /// Number of cross-reel parity reels (`group_parity` per group).
    pub fn parity_reels(&self) -> usize {
        self.groups() * self.group_parity
    }

    /// Total reels: content reels first, then parity reels in group order.
    pub fn total_reels(&self) -> usize {
        self.content_reels() + self.parity_reels()
    }

    /// Frames on content reel `r`.
    pub fn reel_frames(&self, r: usize) -> usize {
        let total = self.total_frames();
        if self.reel_capacity == 0 {
            return total;
        }
        total
            .saturating_sub(r * self.reel_capacity)
            .min(self.reel_capacity)
    }

    /// `(reel, offset)` of global frame position `pos`.
    pub fn reel_of(&self, pos: usize) -> (usize, usize) {
        if self.reel_capacity == 0 {
            (0, pos)
        } else {
            (pos / self.reel_capacity, pos % self.reel_capacity)
        }
    }

    /// Parity group of content reel `r`.
    pub fn group_of(&self, r: usize) -> usize {
        r / self.group_reels.max(1)
    }

    /// Content reel indices of parity group `g`.
    pub fn group_members(&self, g: usize) -> std::ops::Range<usize> {
        let start = g * self.group_reels;
        start..((g + 1) * self.group_reels).min(self.content_reels())
    }

    /// Reel index of group `g`'s parity reel in slot `slot`
    /// (`0..group_parity`). Parity reels sit after all content reels,
    /// group-major then slot-major.
    pub fn parity_reel_of(&self, g: usize, slot: usize) -> usize {
        self.content_reels() + g * self.group_parity + slot
    }

    /// Reel ids of group `g`'s parity reels, in slot order.
    pub fn parity_reels_of(&self, g: usize) -> std::ops::Range<usize> {
        let start = self.parity_reel_of(g, 0);
        start..start + self.group_parity
    }

    /// `(group, slot)` of reel `r` when it is a parity reel, `None` for
    /// content reels.
    pub fn parity_role_of(&self, r: usize) -> Option<(usize, usize)> {
        let m = self.group_parity;
        if r < self.content_reels() || m == 0 {
            return None;
        }
        let p = r - self.content_reels();
        Some((p / m, p % m))
    }

    /// The exact header of frame `j` on any of group `g`'s parity reels:
    /// the dense (`ReelParity`, no outer code) emission the archive
    /// encoder stamps, reconstructible without decoding — which is what
    /// lets a lost *parity* reel be re-encoded bit-for-bit during repair.
    pub fn parity_frame_header(&self, g: usize, j: usize) -> EmblemHeader {
        let plen = self.parity_stream_len(g);
        EmblemHeader::new(
            EmblemKind::ReelParity,
            j as u16,
            (j / GROUP_DATA) as u16,
            self.chunk_cap as u32,
            plen as u32,
        )
    }

    /// Frames on each of group `g`'s parity reels.
    pub fn parity_reel_frames(&self, g: usize) -> usize {
        self.parity_stream_len(g) / self.chunk_cap.max(1)
    }

    /// Byte length of group `g`'s cross-reel parity stream: the longest
    /// member reel, in padded-chunk bytes. (Members shorter than that —
    /// only ever the final reel — contribute zero chunks beyond their
    /// end.)
    pub fn parity_stream_len(&self, g: usize) -> usize {
        self.group_members(g)
            .map(|r| self.reel_frames(r))
            .max()
            .unwrap_or(0)
            * self.chunk_cap
    }

    /// Global frame position of emission slot `emission` in `stream`.
    pub fn position(&self, stream: StreamId, emission: usize) -> usize {
        let base = match stream {
            StreamId::System => 0,
            StreamId::Index => self.sys_frames(),
            StreamId::Data => self.sys_frames() + self.index_frames(),
        };
        base + emission
    }

    /// Global frame position of `stream`'s data chunk `chunk`.
    pub fn chunk_position(&self, stream: StreamId, chunk: usize) -> usize {
        self.position(
            stream,
            ule_emblem::stream::chunk_global_index(chunk, self.outer_parity),
        )
    }

    /// Decode a global frame position back to its stream, emission slot,
    /// and exact header. Panics if `pos >= total_frames()`.
    pub fn frame_info(&self, pos: usize) -> FrameInfo {
        assert!(pos < self.total_frames(), "position {pos} beyond layout");
        let (stream, emission, len) = if pos < self.sys_frames() {
            (StreamId::System, pos, self.sys_len)
        } else if pos < self.sys_frames() + self.index_frames() {
            (StreamId::Index, pos - self.sys_frames(), self.index_len)
        } else {
            (
                StreamId::Data,
                pos - self.sys_frames() - self.index_frames(),
                self.data_len,
            )
        };
        let cap = self.chunk_cap;
        let n_chunks = len.div_ceil(cap.max(1)).max(1);
        let header = if !self.outer_parity {
            let payload = chunk_len(emission, n_chunks, cap, len);
            EmblemHeader::new(
                stream.kind(),
                emission as u16,
                (emission / GROUP_DATA) as u16,
                payload as u32,
                len as u32,
            )
        } else {
            let group = emission / (GROUP_DATA + GROUP_PARITY);
            let within = emission % (GROUP_DATA + GROUP_PARITY);
            let in_group = (n_chunks - group * GROUP_DATA).min(GROUP_DATA);
            if within < in_group {
                let chunk = group * GROUP_DATA + within;
                EmblemHeader::new(
                    stream.kind(),
                    emission as u16,
                    group as u16,
                    chunk_len(chunk, n_chunks, cap, len) as u32,
                    len as u32,
                )
            } else {
                EmblemHeader::new(
                    EmblemKind::Parity,
                    emission as u16,
                    group as u16,
                    cap as u32,
                    len as u32,
                )
            }
        };
        FrameInfo {
            stream,
            emission,
            header,
        }
    }
}

/// Payload length of data chunk `chunk` in a `len`-byte stream.
fn chunk_len(chunk: usize, n_chunks: usize, cap: usize, len: usize) -> usize {
    if chunk + 1 == n_chunks {
        len - chunk * cap
    } else {
        cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> ReelLayout {
        ReelLayout {
            chunk_cap: 100,
            sys_len: 250,   // 3 chunks -> 1 group -> 6 frames with parity
            index_len: 90,  // 1 chunk  -> 4 frames
            data_len: 2405, // 25 chunks -> 2 groups -> 31 frames
            outer_parity: true,
            reel_capacity: 10,
            group_reels: 2,
            group_parity: 1,
        }
    }

    #[test]
    fn frame_counts() {
        let l = layout();
        assert_eq!(l.sys_frames(), 6);
        assert_eq!(l.index_frames(), 4);
        assert_eq!(l.data_frames(), 31);
        assert_eq!(l.total_frames(), 41);
        assert_eq!(l.content_reels(), 5); // 41 frames / 10 per reel
        assert_eq!(l.reel_frames(4), 1);
        assert_eq!(l.groups(), 3); // groups {0,1} {2,3} {4}
        assert_eq!(l.parity_reels(), 3);
        assert_eq!(l.total_reels(), 8);
        assert_eq!(l.parity_reel_of(1, 0), 6);
        assert_eq!(l.group_members(2), 4..5);
        assert_eq!(l.parity_stream_len(0), 1000);
        assert_eq!(l.parity_stream_len(2), 100);
        assert_eq!(l.parity_role_of(4), None);
        assert_eq!(l.parity_role_of(6), Some((1, 0)));
    }

    #[test]
    fn multi_parity_reel_mapping() {
        let l = ReelLayout {
            group_parity: 2,
            ..layout()
        };
        // Same content geometry, twice the parity reels.
        assert_eq!(l.content_reels(), 5);
        assert_eq!(l.groups(), 3);
        assert_eq!(l.parity_reels(), 6);
        assert_eq!(l.total_reels(), 11);
        // Group-major, slot-major: g0 -> 5,6  g1 -> 7,8  g2 -> 9,10.
        assert_eq!(l.parity_reel_of(0, 1), 6);
        assert_eq!(l.parity_reel_of(1, 0), 7);
        assert_eq!(l.parity_reels_of(2), 9..11);
        assert_eq!(l.parity_role_of(8), Some((1, 1)));
        assert_eq!(l.parity_role_of(3), None);
        // Parity frame headers are dense ReelParity emissions.
        let h = l.parity_frame_header(0, 3);
        assert_eq!(h.kind, EmblemKind::ReelParity);
        assert_eq!(h.index, 3);
        assert_eq!(h.payload_len, 100);
        assert_eq!(h.total_len, 1000);
        assert_eq!(l.parity_reel_frames(0), 10);
        assert_eq!(l.parity_reel_frames(2), 1);
    }

    #[test]
    fn headers_match_the_encoder_emission_order() {
        let l = layout();
        // System stream, tail group of 3 chunks: data at emissions 0..3,
        // parity directly after at 3..6.
        let f = l.frame_info(0);
        assert_eq!(f.stream, StreamId::System);
        assert_eq!(f.header.kind, EmblemKind::System);
        assert_eq!(f.header.payload_len, 100);
        let f = l.frame_info(2);
        assert_eq!(f.header.payload_len, 50); // 250 - 2*100
        let f = l.frame_info(3);
        assert_eq!(f.header.kind, EmblemKind::Parity);
        assert_eq!(f.header.index, 3);
        // Index stream starts at position 6.
        let f = l.frame_info(6);
        assert_eq!(f.stream, StreamId::Index);
        assert_eq!(f.header.kind, EmblemKind::Index);
        assert_eq!(f.header.payload_len, 90);
        // Data stream: chunk 17 opens group 1 at emission 20.
        let pos = l.chunk_position(StreamId::Data, 17);
        assert_eq!(pos, 10 + 20);
        let f = l.frame_info(pos);
        assert_eq!(f.header.kind, EmblemKind::Data);
        assert_eq!(f.header.index, 20);
        assert_eq!(f.header.group, 1);
        // Data group 1 holds 8 chunks; its parity sits right after them.
        let f = l.frame_info(10 + 28);
        assert_eq!(f.header.kind, EmblemKind::Parity);
        assert_eq!(f.header.group, 1);
    }

    #[test]
    fn reel_mapping_is_positional() {
        let l = layout();
        assert_eq!(l.reel_of(0), (0, 0));
        assert_eq!(l.reel_of(37), (3, 7));
        assert_eq!(l.group_of(3), 1);
    }

    #[test]
    fn single_reel_no_parity_layout() {
        let l = ReelLayout {
            reel_capacity: 0,
            group_reels: 0,
            ..layout()
        };
        assert_eq!(l.content_reels(), 1);
        assert_eq!(l.parity_reels(), 0);
        assert_eq!(l.reel_of(40), (0, 40));
        assert_eq!(l.reel_frames(0), 41);
    }

    #[test]
    fn dense_layout_headers() {
        let l = ReelLayout {
            outer_parity: false,
            ..layout()
        };
        assert_eq!(l.sys_frames(), 3);
        let f = l.frame_info(3); // index stream, dense
        assert_eq!(f.stream, StreamId::Index);
        assert_eq!(f.header.index, 0);
    }
}
