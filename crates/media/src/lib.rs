//! Analog media simulation (system **S10** in `DESIGN.md`).
//!
//! The paper evaluates Micr'Olonys on three visual analog media, each with
//! physical write/read hardware we substitute with calibrated simulation
//! (see `DESIGN.md` §2 for the substitution argument):
//!
//! * **archival paper** — A4 at 600 dpi, Canon ImageRunner class laser
//!   print + scan (§4 "Paper archive": 26 emblems for a 1.2 MB archive,
//!   50 KB/page);
//! * **16 mm microfilm** — IMAGELINK 9600 class writer, 3888×5498 bitonal
//!   frames, 1.3 GB per 66 m reel (§4 "Microfilm archive");
//! * **35 mm cinema film** — Arrilaser 2K full-aperture write (2048×1556),
//!   DFT Scanity 4K grayscale scan (§4 "Cinema film archive"); the paper
//!   notes cinema scanners are "sharper, low-distortion", reflected in the
//!   gentler degradation preset.
//!
//! A [`Medium`] couples an emblem geometry with frame dimensions, a
//! degradation preset, and linear-density figures so the capacity models
//! the paper reports (pages per archive, GB per reel) can be regenerated.
//!
//! Beyond the per-pixel scanner physics, [`Medium::scan_with_faults`]
//! layers *physical decay* on top: an `ule_fault` [`FaultPlan`] (tears,
//! stains, scratches, fading, lost or reordered frames) applied at a
//! severity knob — the workload of the E9 recovery-envelope campaign.
//! [`Medium::canonical_fault_plan`] names each medium's standard decay
//! scenario.

use ule_emblem::EmblemGeometry;
use ule_fault::{
    Blotch, BurstScratch, ContrastFade, EdgeTear, FaultPlan, FrameLossFault, FrameReorderFault,
    Orientation, SaltPepper,
};
use ule_par::ThreadConfig;
use ule_raster::draw::blit;
use ule_raster::{DegradeParams, GrayImage, Scanner};

/// One analog storage medium: geometry, frame format, and scan physics.
#[derive(Clone, Debug)]
pub struct Medium {
    /// Human-readable name used in reports.
    pub name: &'static str,
    /// Emblem geometry used on this medium.
    pub geometry: EmblemGeometry,
    /// Written frame/page width in pixels.
    pub frame_width: usize,
    /// Written frame/page height in pixels.
    pub frame_height: usize,
    /// Degradation preset applied by [`Medium::scan`].
    pub degrade: DegradeParams,
    /// Frames per meter of medium (paper: sheets, so this models a box of
    /// sheets per "meter of shelf" and is only meaningful for film).
    pub frames_per_meter: f64,
}

impl Medium {
    /// A4 paper at 600 dpi: 210×297 mm → 4960×7016 px.
    pub fn paper_a4_600dpi() -> Self {
        Self {
            name: "A4 paper @600dpi",
            geometry: EmblemGeometry::paper_a4_600dpi(),
            frame_width: 4960,
            frame_height: 7016,
            degrade: DegradeParams {
                noise_sigma: 14.0,
                dust_per_mpx: 3.0,
                dust_max_radius: 1.5,
                scratches: 0,
                scratch_width: 0.0,
                fade_amplitude: 8.0,
                hotspots: 0,
                hotspot_amplitude: 0.0,
                row_jitter: 0.4,
                lens_k: 0.0012,
                scan_scale: 1.0,
            },
            // Sheets are discrete; keep a nominal figure (200 sheets/m of
            // archive box depth).
            frames_per_meter: 200.0,
        }
    }

    /// 16 mm microfilm, IMAGELINK 9600 class (bitonal 3888×5498 frames).
    /// `frames_per_meter` is derived from the paper's stated capacity:
    /// 1.3 GB per 66 m reel at ~44 KB of payload per frame.
    pub fn microfilm_16mm() -> Self {
        let geometry = EmblemGeometry::microfilm_16mm();
        let frames_per_meter = 1.3e9 / 66.0 / geometry.payload_capacity() as f64;
        Self {
            name: "16mm microfilm",
            geometry,
            frame_width: 3888,
            frame_height: 5498,
            degrade: DegradeParams {
                noise_sigma: 16.0,
                dust_per_mpx: 6.0,
                dust_max_radius: 2.0,
                scratches: 1,
                scratch_width: 1.0,
                fade_amplitude: 14.0,
                hotspots: 1,
                hotspot_amplitude: 25.0,
                row_jitter: 0.7,
                lens_k: 0.0020,
                // The paper's microfilm reader produced ~5000×7000 scans of
                // 3888×5498 frames (≈1.28×).
                scan_scale: 1.28,
            },
            frames_per_meter,
        }
    }

    /// 35 mm black-and-white cinema film: 2K full-aperture frames written
    /// by an Arrilaser-class recorder, scanned at 4K grayscale
    /// (Scanity-class). Low-distortion per the paper's observation.
    pub fn cinema_35mm() -> Self {
        Self {
            name: "35mm cinema film",
            geometry: EmblemGeometry::cinema_2k(),
            frame_width: 2048,
            frame_height: 1556,
            degrade: DegradeParams {
                noise_sigma: 8.0,
                dust_per_mpx: 2.0,
                dust_max_radius: 1.5,
                scratches: 0,
                scratch_width: 0.0,
                fade_amplitude: 6.0,
                hotspots: 0,
                hotspot_amplitude: 0.0,
                row_jitter: 0.2,
                lens_k: 0.0006,
                scan_scale: 2.0, // 2K frame scanned at 4K
            },
            // Standard 4-perf 35 mm frame pitch: 19.05 mm.
            frames_per_meter: 1000.0 / 19.05,
        }
    }

    /// A miniature medium for fast tests: small emblems, small frames,
    /// mild noise.
    pub fn test_tiny() -> Self {
        let geometry = EmblemGeometry::test_small();
        Self {
            name: "test medium",
            geometry,
            frame_width: geometry.image_width() + 60,
            frame_height: geometry.image_height() + 40,
            degrade: DegradeParams {
                noise_sigma: 10.0,
                row_jitter: 0.3,
                ..Default::default()
            },
            frames_per_meter: 100.0,
        }
    }

    /// Miniature medium with the one-block micro geometry: used by the
    /// emulated-restoration tests where per-cell cost is ~10^4 VeRisc
    /// instructions.
    pub fn test_micro() -> Self {
        let geometry = EmblemGeometry::test_micro();
        Self {
            name: "micro test medium",
            geometry,
            frame_width: geometry.image_width() + 60,
            frame_height: geometry.image_height() + 40,
            degrade: DegradeParams::pristine(),
            frames_per_meter: 100.0,
        }
    }

    /// Render ("print"/"film") one emblem centered on a white frame.
    ///
    /// # Panics
    /// Panics if the emblem image exceeds the frame dimensions.
    pub fn print(&self, emblem: &GrayImage) -> GrayImage {
        assert!(
            emblem.width() <= self.frame_width && emblem.height() <= self.frame_height,
            "emblem {}x{} exceeds {} frame {}x{}",
            emblem.width(),
            emblem.height(),
            self.name,
            self.frame_width,
            self.frame_height
        );
        let mut frame = GrayImage::new(self.frame_width, self.frame_height, 255);
        let x = (self.frame_width - emblem.width()) / 2;
        let y = (self.frame_height - emblem.height()) / 2;
        blit(&mut frame, emblem, x, y);
        frame
    }

    /// Scan one frame with this medium's degradation preset.
    pub fn scan(&self, frame: &GrayImage, seed: u64) -> GrayImage {
        Scanner::new(self.degrade.clone(), seed).scan(frame)
    }

    /// Scan with severities scaled by `severity` (robustness sweeps).
    pub fn scan_with_severity(&self, frame: &GrayImage, seed: u64, severity: f64) -> GrayImage {
        Scanner::new(self.degrade.scaled(severity), seed).scan(frame)
    }

    /// Print a whole emblem stream to frames.
    pub fn print_all(&self, emblems: &[GrayImage]) -> Vec<GrayImage> {
        self.print_all_with(emblems, ThreadConfig::Serial)
    }

    /// [`Medium::print_all`] with frame rasterisation fanned out across
    /// `threads` workers. Each frame is a pure function of its emblem, so
    /// the frames are byte-identical to the serial path.
    pub fn print_all_with(&self, emblems: &[GrayImage], threads: ThreadConfig) -> Vec<GrayImage> {
        ule_par::map(threads, emblems, |e| self.print(e))
    }

    /// Scan a set of frames (seed is perturbed per frame).
    pub fn scan_all(&self, frames: &[GrayImage], seed: u64) -> Vec<GrayImage> {
        self.scan_all_with(frames, seed, ThreadConfig::Serial)
    }

    /// [`Medium::scan_all`] across `threads` workers. The per-frame seed
    /// depends only on the frame index, so scans are identical to the
    /// serial path at any thread count.
    ///
    /// Scans of undamaged frames decode on the Reed–Solomon clean-frame
    /// fast path (`ule_gf256::RsCode::decode` returns after one
    /// slice-kernel syndromes pass — `DESIGN.md` §12), so a verification
    /// sweep over an intact shelf costs sampling plus syndromes, never
    /// Berlekamp–Massey; the report's `[E11]` section and `EXPERIMENTS.md`
    /// E11 quantify the resulting scan-throughput gain.
    pub fn scan_all_with(
        &self,
        frames: &[GrayImage],
        seed: u64,
        threads: ThreadConfig,
    ) -> Vec<GrayImage> {
        ule_par::map_indexed(threads, frames.len(), |i| {
            self.scan(&frames[i], seed ^ (i as u64 + 1))
        })
    }

    /// [`Medium::scan_all_with`] followed by physical fault injection: the
    /// scans are pushed through `plan` at `severity` (see `ule_fault` for
    /// the model zoo and severity semantics, `DESIGN.md` §10 for the
    /// method). Faults are applied in the scan domain — decay damage is
    /// modelled as it *appears* in the digitised image, which keeps
    /// envelope campaigns re-scannable-free and is equivalent for the
    /// saturated defects the models produce. Deterministic in
    /// `(seed, severity)` and independent of `threads`; frame-set models
    /// in the plan may drop or reorder whole scans.
    pub fn scan_with_faults(
        &self,
        frames: &[GrayImage],
        seed: u64,
        plan: &FaultPlan,
        severity: f64,
        threads: ThreadConfig,
    ) -> Vec<GrayImage> {
        let scans = self.scan_all_with(frames, seed, threads);
        plan.apply_with(&scans, severity, seed ^ 0xFA17_FA17_FA17_FA17, threads)
    }

    /// The canonical fault scenario for this medium — the `FaultPlan`
    /// whose injected scans the golden suite pins (`tests/golden_format.rs`)
    /// and E9 reports alongside the per-model envelopes. Each plan
    /// composes the decay modes §3.1 and the archival literature name for
    /// that carrier: paper tears, stains and foxing; film scratches,
    /// fading and splice damage.
    pub fn canonical_fault_plan(&self) -> FaultPlan {
        match self.name {
            "A4 paper @600dpi" => FaultPlan::new()
                .with(EdgeTear)
                .with(Blotch)
                .with(SaltPepper)
                .with(FrameLossFault),
            "16mm microfilm" => FaultPlan::new()
                .with(BurstScratch {
                    orientation: Orientation::Vertical,
                })
                .with(ContrastFade)
                .with(SaltPepper)
                .with(FrameLossFault),
            "35mm cinema film" => FaultPlan::new()
                .with(BurstScratch {
                    orientation: Orientation::Horizontal,
                })
                .with(ContrastFade)
                .with(FrameReorderFault),
            // Test media: one cheap pixel model plus both frame-set models
            // so the fast suites still cross the loss/reorder paths.
            _ => FaultPlan::new()
                .with(SaltPepper)
                .with(FrameLossFault)
                .with(FrameReorderFault),
        }
    }

    /// Payload bytes stored per frame.
    pub fn payload_per_frame(&self) -> usize {
        self.geometry.payload_capacity()
    }

    /// Capacity model: bytes stored on `meters` of this medium
    /// (data emblems only — the paper's 1.3 GB/66 m figure).
    pub fn capacity_bytes(&self, meters: f64) -> u64 {
        (self.frames_per_meter * meters * self.payload_per_frame() as f64) as u64
    }

    /// Frames that fit on one physical reel (or archive box) of `meters`
    /// of this medium — the natural `reel_capacity` for a vault (S16)
    /// sharded over real carriers: 66 m of 16 mm microfilm, a 305 m
    /// cinema reel, a 200-sheet archive box. At least 1, so a
    /// pathologically short reel still holds a frame.
    pub fn reel_capacity(&self, meters: f64) -> usize {
        ((self.frames_per_meter * meters) as usize).max(1)
    }

    /// Frames (pages) needed for `len` payload bytes, data emblems only.
    pub fn frames_for(&self, len: usize) -> usize {
        self.geometry.emblems_for(len)
    }

    /// Density in payload bytes per frame/page for a `len`-byte archive —
    /// the "50 KB per page" figure of §4.
    pub fn density_per_frame(&self, len: usize) -> f64 {
        len as f64 / self.frames_for(len) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ule_emblem::{decode_emblem, encode_emblem, EmblemHeader, EmblemKind};

    #[test]
    fn emblems_fit_their_media_frames() {
        for m in [
            Medium::paper_a4_600dpi(),
            Medium::microfilm_16mm(),
            Medium::cinema_35mm(),
        ] {
            assert!(m.geometry.image_width() <= m.frame_width, "{}", m.name);
            assert!(m.geometry.image_height() <= m.frame_height, "{}", m.name);
        }
    }

    #[test]
    fn microfilm_reel_capacity_matches_paper() {
        let m = Medium::microfilm_16mm();
        let cap = m.capacity_bytes(66.0);
        // §4: "capable of storing 1.3GB in a single 66 meter reel".
        assert!((1.25e9..1.35e9).contains(&(cap as f64)), "cap={cap}");
    }

    #[test]
    fn paper_page_density_near_50kb() {
        let m = Medium::paper_a4_600dpi();
        let density = m.density_per_frame(1_230_000);
        assert!((44_000.0..53_000.0).contains(&density), "density={density}");
        // And the page count is the paper's ~26.
        let pages = m.frames_for(1_230_000);
        assert!((25..=27).contains(&pages), "pages={pages}");
    }

    #[test]
    fn print_centers_emblem_on_white_frame() {
        let m = Medium::test_tiny();
        let g = m.geometry;
        let header = EmblemHeader::new(EmblemKind::Data, 0, 0, 4, 4);
        let emblem = encode_emblem(&g, &header, &[1, 2, 3, 4]);
        let frame = m.print(&emblem);
        assert_eq!(frame.width(), m.frame_width);
        assert_eq!(frame.get(0, 0), 255);
        assert_eq!(frame.get(frame.width() - 1, frame.height() - 1), 255);
    }

    #[test]
    fn tiny_medium_roundtrip_through_print_and_scan() {
        let m = Medium::test_tiny();
        let g = m.geometry;
        let data: Vec<u8> = (0..200u16).map(|i| (i % 251) as u8).collect();
        let header =
            EmblemHeader::new(EmblemKind::Data, 0, 0, data.len() as u32, data.len() as u32);
        let emblem = encode_emblem(&g, &header, &data);
        let scan = m.scan(&m.print(&emblem), 77);
        let (h, p, _) = decode_emblem(&g, &scan).unwrap();
        assert_eq!(h.payload_len as usize, data.len());
        assert_eq!(p, data);
    }

    #[test]
    fn severity_zero_scan_of_bitonal_master_is_clean() {
        let m = Medium::test_tiny();
        let g = m.geometry;
        let header = EmblemHeader::new(EmblemKind::Data, 0, 0, 1, 1);
        let emblem = encode_emblem(&g, &header, &[42]);
        let frame = m.print(&emblem);
        let scan = m.scan_with_severity(&frame, 1, 0.0);
        assert_eq!(scan, frame);
    }

    #[test]
    fn cinema_scan_doubles_resolution() {
        let m = Medium::cinema_35mm();
        assert_eq!(m.degrade.scan_scale, 2.0);
        // 2048 * 2 = 4096 — the Scanity 4K scan dimension of §4.
        assert_eq!((m.frame_width as f64 * m.degrade.scan_scale) as usize, 4096);
    }

    #[test]
    fn reel_capacity_tracks_physical_reel_lengths() {
        let m = Medium::microfilm_16mm();
        // 66 m reel ≈ 1.3 GB / ~44 KB per frame.
        let frames = m.reel_capacity(66.0);
        assert!((28_000..32_000).contains(&frames), "frames={frames}");
        assert_eq!(Medium::test_tiny().reel_capacity(0.0), 1, "floor of 1");
    }

    #[test]
    fn frames_for_rounds_up() {
        let m = Medium::test_tiny();
        let cap = m.payload_per_frame();
        assert_eq!(m.frames_for(cap + 1), 2);
    }

    #[test]
    fn scan_with_faults_at_severity_zero_matches_plain_scan() {
        let m = Medium::test_tiny();
        let g = m.geometry;
        let header = EmblemHeader::new(EmblemKind::Data, 0, 0, 3, 3);
        let frames = vec![m.print(&encode_emblem(&g, &header, &[1, 2, 3]))];
        let plan = m.canonical_fault_plan();
        let faulted = m.scan_with_faults(&frames, 5, &plan, 0.0, ThreadConfig::Serial);
        assert_eq!(faulted, m.scan_all(&frames, 5));
    }

    #[test]
    fn scan_with_faults_is_thread_identical() {
        let m = Medium::test_tiny();
        let g = m.geometry;
        let frames: Vec<GrayImage> = (0..5u8)
            .map(|i| {
                let header = EmblemHeader::new(EmblemKind::Data, i as u16, 0, 1, 1);
                m.print(&encode_emblem(&g, &header, &[i]))
            })
            .collect();
        let plan = m.canonical_fault_plan();
        let serial = m.scan_with_faults(&frames, 9, &plan, 0.6, ThreadConfig::Serial);
        for threads in [2usize, 4] {
            let par = m.scan_with_faults(&frames, 9, &plan, 0.6, ThreadConfig::Fixed(threads));
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn production_media_have_distinct_canonical_plans() {
        let labels: Vec<String> = [
            Medium::paper_a4_600dpi(),
            Medium::microfilm_16mm(),
            Medium::cinema_35mm(),
            Medium::test_tiny(),
        ]
        .iter()
        .map(|m| m.canonical_fault_plan().label())
        .collect();
        assert_eq!(labels[0], "edge-tear+blotch+salt-pepper+frame-loss");
        assert_eq!(labels[1], "scratch-v+fade+salt-pepper+frame-loss");
        assert_eq!(labels[2], "scratch-h+fade+frame-reorder");
        assert_eq!(labels[3], "salt-pepper+frame-loss+frame-reorder");
    }
}
