//! The ULE end-to-end proof (Figure 2b): restore an archived database
//! using *only* the Bootstrap document and the scans — every decoder runs
//! inside the nested VeRisc → DynaRisc emulator.

use micr_olonys::{EmulationTier, MicrOlonys, ThreadConfig};
use ule_compress::Scheme;
use ule_media::Medium;
use ule_verisc::vm::EngineKind;

fn micro_system() -> MicrOlonys {
    MicrOlonys {
        medium: Medium::test_micro(),
        scheme: Scheme::Lzss,
        with_parity: false,
        threads: micr_olonys::ThreadConfig::Serial,
    }
}

fn sample_dump() -> Vec<u8> {
    let mut s = String::from("CREATE TABLE nation (n_nationkey integer, n_name text);\n");
    s.push_str("COPY nation (n_nationkey, n_name) FROM stdin;\n");
    for (i, n) in ["ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT"]
        .iter()
        .enumerate()
    {
        s.push_str(&format!("{i}\t{n}\n"));
    }
    s.push_str("\\.\n");
    s.into_bytes()
}

#[test]
fn full_emulated_restoration_from_bootstrap_text() {
    let sys = micro_system();
    let dump = sample_dump();
    let out = sys.archive(&dump);

    // The restorer gets: the printed bootstrap text and ALL frames in an
    // arbitrary order (system + data mixed — headers sort it out).
    let bootstrap_text = out.bootstrap.to_text();
    let mut scans = out.system_frames.clone();
    scans.extend(out.data_frames.iter().cloned());
    scans.reverse(); // order must not matter

    let (restored, stats) = MicrOlonys::restore_emulated(
        &bootstrap_text,
        &scans,
        EmulationTier::Nested(EngineKind::MatchBased),
        ThreadConfig::Serial,
    )
    .expect("emulated restore");
    assert_eq!(restored, dump, "restored dump differs");
    assert!(
        stats.verisc_steps > 1_000_000,
        "suspiciously few VeRisc steps: {}",
        stats.verisc_steps
    );
}

#[test]
fn emulated_restore_agrees_across_all_engines() {
    // The portability claim: any independent VeRisc implementation
    // restores the same bytes.
    let sys = micro_system();
    let dump = b"COPY t (a, b) FROM stdin;\n1\tx\n2\ty\n\\.\n".to_vec();
    let out = sys.archive(&dump);
    let text = out.bootstrap.to_text();
    let mut scans = out.system_frames.clone();
    scans.extend(out.data_frames.iter().cloned());

    let mut results = Vec::new();
    for kind in EngineKind::ALL {
        let (restored, _) = MicrOlonys::restore_emulated(
            &text,
            &scans,
            EmulationTier::Nested(kind),
            ThreadConfig::Serial,
        )
        .expect("restore");
        results.push((kind, restored));
    }
    for w in results.windows(2) {
        assert_eq!(w[0].1, w[1].1, "{:?} vs {:?}", w[0].0, w[1].0);
    }
    assert_eq!(results[0].1, dump);
}

#[test]
fn emulated_restore_agrees_across_all_tiers() {
    // The throughput rebuild must not change one byte: the threaded
    // engine, the reference interpreter, and the nested VeRisc emulator
    // restore identical dumps with identical per-frame CRCs.
    let sys = micro_system();
    let dump = sample_dump();
    let out = sys.archive(&dump);
    let text = out.bootstrap.to_text();
    let mut scans = out.system_frames.clone();
    scans.extend(out.data_frames.iter().cloned());

    let tiers = [
        EmulationTier::Threaded,
        EmulationTier::Interpreter,
        EmulationTier::Nested(EngineKind::MatchBased),
    ];
    let mut results = Vec::new();
    for tier in tiers {
        let (restored, stats) =
            MicrOlonys::restore_emulated(&text, &scans, tier, ThreadConfig::Serial)
                .expect("restore");
        results.push((tier, restored, stats.frame_crc32));
    }
    for w in results.windows(2) {
        assert_eq!(w[0].1, w[1].1, "bytes: {:?} vs {:?}", w[0].0, w[1].0);
        assert_eq!(w[0].2, w[1].2, "frame crc: {:?} vs {:?}", w[0].0, w[1].0);
    }
    assert_eq!(results[0].1, dump);
}

#[test]
fn host_tiers_count_guest_steps_and_agree_on_them() {
    // Both host engines execute the same archived instruction stream, so
    // their DynaRisc instruction counts must match exactly — fuel parity
    // is part of the bit-identical contract.
    let sys = micro_system();
    let dump = sample_dump();
    let out = sys.archive(&dump);
    let text = out.bootstrap.to_text();
    let mut scans = out.system_frames.clone();
    scans.extend(out.data_frames.iter().cloned());

    let (_, threaded) =
        MicrOlonys::restore_emulated(&text, &scans, EmulationTier::Threaded, ThreadConfig::Serial)
            .expect("threaded");
    let (_, interp) = MicrOlonys::restore_emulated(
        &text,
        &scans,
        EmulationTier::Interpreter,
        ThreadConfig::Serial,
    )
    .expect("interpreter");
    assert!(threaded.guest_steps > 10_000, "guest work not counted");
    assert_eq!(threaded.guest_steps, interp.guest_steps);
    assert_eq!(threaded.verisc_steps, 0);
    assert_eq!(interp.verisc_steps, 0);
}

#[test]
fn native_restore_handles_degraded_scans() {
    let sys = MicrOlonys::test_tiny();
    let dump = sample_dump().repeat(8);
    let out = sys.archive(&dump);
    let scans = sys.medium.scan_all(&out.data_frames, 99);
    let (restored, stats) = sys.restore_native(&scans).expect("native restore");
    assert_eq!(restored, dump);
    assert_eq!(stats.scans, out.data_frames.len());
}

#[test]
fn native_restore_survives_three_missing_frames() {
    let sys = MicrOlonys::test_tiny();
    // Enough data for several emblems in one group.
    let dump: Vec<u8> = (0..6000u32)
        .flat_map(|i| format!("{}\t{}\n", i, i * 31).into_bytes())
        .collect();
    let out = sys.archive(&dump);
    assert!(out.data_frames.len() >= 6, "want a multi-emblem group");
    let kept: Vec<_> = out
        .data_frames
        .iter()
        .enumerate()
        .filter(|(i, _)| ![0usize, 2, 4].contains(i))
        .map(|(_, f)| sys.medium.scan(f, 7))
        .collect();
    let (restored, stats) = sys.restore_native(&kept).expect("restore with erasures");
    assert_eq!(restored, dump);
    assert!(stats.emblems_recovered >= 1);
}

#[test]
fn system_emblems_carry_the_decoder() {
    let sys = MicrOlonys::test_tiny();
    let out = sys.archive(b"tiny");
    let scans = sys.medium.scan_all(&out.system_frames, 3);
    assert!(sys.verify_system_emblems(&scans).unwrap());
}
