//! The hex-to-letter text codec of §3.2.
//!
//! "letters A to P are used to encode hexadecimal values 0xF to 0x0
//! respectively" — so `A = 0xF, B = 0xE, …, O = 0x1, P = 0x0`. Words are
//! written most-significant nibble first, eight letters per 32-bit word.
//! The alphabet survives OCR well (no digits/letters that collide) and is
//! trivially described in one Bootstrap sentence.

/// Encode one nibble (0..=15) as a letter.
#[inline]
pub fn nibble_to_letter(nibble: u8) -> char {
    debug_assert!(nibble <= 0xF);
    (b'A' + (0xF - nibble)) as char
}

/// Decode a letter back to its nibble; `None` for characters outside A..=P.
#[inline]
pub fn letter_to_nibble(c: char) -> Option<u8> {
    if ('A'..='P').contains(&c) {
        Some(0xF - (c as u8 - b'A'))
    } else {
        None
    }
}

/// Encode 32-bit words as a letter string (8 letters per word, MSB first).
pub fn encode_words(words: &[u32]) -> String {
    let mut out = String::with_capacity(words.len() * 8);
    for &w in words {
        for shift in (0..8).rev() {
            out.push(nibble_to_letter(((w >> (shift * 4)) & 0xF) as u8));
        }
    }
    out
}

/// Decode a letter stream back into 32-bit words, skipping whitespace.
/// Errors on any other character or a dangling partial word.
pub fn decode_words(text: &str) -> Result<Vec<u32>, LetterError> {
    let mut words = Vec::new();
    let mut acc: u32 = 0;
    let mut nibbles = 0usize;
    for (i, c) in text.chars().enumerate() {
        if c.is_whitespace() {
            continue;
        }
        let n = letter_to_nibble(c).ok_or(LetterError::BadCharacter { at: i, c })?;
        acc = (acc << 4) | n as u32;
        nibbles += 1;
        if nibbles == 8 {
            words.push(acc);
            acc = 0;
            nibbles = 0;
        }
    }
    if nibbles != 0 {
        return Err(LetterError::PartialWord {
            trailing_nibbles: nibbles,
        });
    }
    Ok(words)
}

/// Encode bytes (for byte-granular payloads like the DBDecode stream).
pub fn encode_bytes(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(nibble_to_letter(b >> 4));
        out.push(nibble_to_letter(b & 0xF));
    }
    out
}

/// Decode a letter stream into bytes, skipping whitespace.
pub fn decode_bytes(text: &str) -> Result<Vec<u8>, LetterError> {
    let mut out = Vec::new();
    let mut hi: Option<u8> = None;
    for (i, c) in text.chars().enumerate() {
        if c.is_whitespace() {
            continue;
        }
        let n = letter_to_nibble(c).ok_or(LetterError::BadCharacter { at: i, c })?;
        match hi.take() {
            Some(h) => out.push((h << 4) | n),
            None => hi = Some(n),
        }
    }
    if hi.is_some() {
        return Err(LetterError::PartialWord {
            trailing_nibbles: 1,
        });
    }
    Ok(out)
}

/// Letter-codec failures.
#[derive(Debug, PartialEq, Eq)]
pub enum LetterError {
    BadCharacter { at: usize, c: char },
    PartialWord { trailing_nibbles: usize },
}

impl std::fmt::Display for LetterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LetterError::BadCharacter { at, c } => write!(f, "invalid letter {c:?} at {at}"),
            LetterError::PartialWord { trailing_nibbles } => {
                write!(f, "dangling partial word ({trailing_nibbles} nibbles)")
            }
        }
    }
}

impl std::error::Error for LetterError {}

/// Wrap a letter stream at `width` characters per line.
pub fn wrap_lines(letters: &str, width: usize) -> String {
    let mut out = String::with_capacity(letters.len() + letters.len() / width + 1);
    for (i, c) in letters.chars().enumerate() {
        if i > 0 && i % width == 0 {
            out.push('\n');
        }
        out.push(c);
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mapping_a_is_f_and_p_is_0() {
        assert_eq!(nibble_to_letter(0xF), 'A');
        assert_eq!(nibble_to_letter(0x0), 'P');
        assert_eq!(letter_to_nibble('A'), Some(0xF));
        assert_eq!(letter_to_nibble('P'), Some(0x0));
        assert_eq!(letter_to_nibble('Q'), None);
        assert_eq!(letter_to_nibble('a'), None);
    }

    #[test]
    fn words_roundtrip() {
        let words = vec![0u32, 1, 0xFFFF_FFFF, 0xDEAD_BEEF, 0x0102_0304];
        let letters = encode_words(&words);
        assert_eq!(letters.len(), words.len() * 8);
        assert_eq!(decode_words(&letters).unwrap(), words);
    }

    #[test]
    fn bytes_roundtrip() {
        let bytes: Vec<u8> = (0..=255).collect();
        let letters = encode_bytes(&bytes);
        assert_eq!(decode_bytes(&letters).unwrap(), bytes);
    }

    #[test]
    fn whitespace_is_skipped() {
        let words = vec![0x1234_5678];
        let letters = wrap_lines(&encode_words(&words), 4);
        assert!(letters.contains('\n'));
        assert_eq!(decode_words(&letters).unwrap(), words);
    }

    #[test]
    fn bad_characters_rejected() {
        assert!(matches!(
            decode_words("ABCDEFG1"),
            Err(LetterError::BadCharacter { .. })
        ));
    }

    #[test]
    fn partial_word_rejected() {
        assert!(matches!(
            decode_words("ABC"),
            Err(LetterError::PartialWord { .. })
        ));
    }

    #[test]
    fn encoding_uses_only_a_through_p() {
        let letters = encode_words(&[0x0123_4567, 0x89AB_CDEF]);
        assert!(
            letters.chars().all(|c| ('A'..='P').contains(&c)),
            "{letters}"
        );
    }
}
