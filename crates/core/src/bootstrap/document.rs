//! Bootstrap document generation and parsing.
//!
//! The document has four sections (the paper's "seven-page document that
//! contains four pages of algorithm pseudocode, and three pages of
//! alphabetic characters"):
//!
//! 1. the VeRisc emulator algorithm in plain prose (`ule_verisc::spec`);
//! 2. the emulator memory image as letters — this single image contains
//!    **both** the DynaRisc emulator (VeRisc code) and the MODecode
//!    DynaRisc instruction stream (in its PROG region), mirroring the
//!    paper's two letter listings in one artifact;
//! 3. the restore manifest: symbol addresses, emblem geometry, the memory
//!    calling convention, and step-by-step restoration instructions;
//! 4. page accounting so the document can be printed alongside the
//!    emblems.

use crate::bootstrap::letters;
use std::collections::HashMap;
use ule_emblem::EmblemGeometry;
use ule_verisc::spec;

/// Characters per printed line and lines per printed page used for the
/// page accounting (A4, typewriter face).
pub const PAGE_COLS: usize = 78;
pub const PAGE_LINES: usize = 64;

const SECTION1: &str = "=== SECTION 1: VERISC EMULATOR ALGORITHM ===";
const SECTION2: &str = "=== SECTION 2: EMULATOR MEMORY IMAGE (LETTERS) ===";
const SECTION3: &str = "=== SECTION 3: RESTORE MANIFEST ===";
const SECTION4: &str = "=== SECTION 4: RESTORATION WALKTHROUGH ===";

/// Vault (S16) manifest: everything a restorer needs to locate the
/// content-index stream and regroup a multi-reel archive. Archives
/// written before the vault layer existed have no `vault:` line; the
/// parser tolerates its absence (→ `None`) and those archives restore
/// through the classic single-container path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VaultManifest {
    /// Number of catalogued segments (tables + filler segments).
    pub tables: usize,
    /// System (DBDecode) stream length in bytes.
    pub sys_len: usize,
    /// Content-index stream length in bytes.
    pub index_len: usize,
    /// Data stream length in bytes (length-prefixed `ULEA` containers).
    pub data_len: usize,
    /// CRC-32 of the serialized content index (integrity check before
    /// trusting frame ranges).
    pub index_crc32: u32,
    /// Frames per content reel (`0` = the whole archive is one reel).
    pub reel_capacity: usize,
    /// Content reels per cross-reel parity group (`0` = no parity reels).
    pub group_reels: usize,
    /// Parity reels per group (the `m` of `RS(k+m, k)`). Documents from
    /// the single-parity era carry no `parity=` token and parse as 1;
    /// unsharded documents (`group=0`) parse as 0.
    pub parity_reels: usize,
}

/// Everything a restorer needs, parsed back out of the document text.
#[derive(Clone, Debug, PartialEq)]
pub struct Bootstrap {
    /// VeRisc memory image prefix (words `[0, dynmem_base)`).
    pub image_prefix: Vec<u32>,
    /// Cell symbol table (DYNMEM, PROG, DPC, SP, flags, REGS, PTRS, STACK).
    pub symbols: HashMap<String, u32>,
    /// Guest program region capacity in cells.
    pub prog_capacity: usize,
    /// Emblem geometry used on the medium.
    pub cols: usize,
    pub rows: usize,
    pub cell_px: usize,
    pub origin_px: usize,
    pub nblocks: usize,
    /// Emblem placement inside a frame.
    pub frame_w: usize,
    pub frame_h: usize,
    pub xoff: usize,
    pub yoff: usize,
    /// DBCoder scheme id stored on the data emblems.
    pub scheme: u8,
    /// Whether the outer RS(20,17) code is on the medium: emblem sequence
    /// numbers then count parity emblems too, so data/system emblem
    /// indices skip 3 slots after every 17 within a stream. A restorer
    /// needs this to map sequence numbers back to stream positions when
    /// frames are missing.
    pub outer_parity: bool,
    /// Vault catalog layer (S16): present when the medium carries a
    /// content-index stream and (possibly) spans multiple reels. `None`
    /// for classic single-container archives — including every document
    /// printed before the vault layer existed.
    pub vault: Option<VaultManifest>,
}

impl Bootstrap {
    /// Reconstruct the emblem geometry.
    pub fn geometry(&self) -> EmblemGeometry {
        EmblemGeometry::new(self.cols, self.rows, self.cell_px)
    }

    /// Render the full document text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("MICR'OLONYS BOOTSTRAP DOCUMENT, FORMAT 1\n");
        out.push_str("Keep this document with the emblem media. It is sufficient,\n");
        out.push_str("together with the scanned emblems, to restore the archive on any\n");
        out.push_str("computer, in any programming language, at any point in the future.\n\n");
        out.push_str(SECTION1);
        out.push('\n');
        out.push_str(&spec::pseudocode());
        out.push('\n');
        out.push_str(SECTION2);
        out.push('\n');
        out.push_str(&format!("words: {}\n", self.image_prefix.len()));
        let mut syms: Vec<(&String, &u32)> = self.symbols.iter().collect();
        syms.sort();
        let sym_line = syms
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ");
        out.push_str(&format!("symbols: {sym_line}\n"));
        out.push_str(&format!("prog-capacity: {}\n", self.prog_capacity));
        out.push_str(&letters::wrap_lines(
            &letters::encode_words(&self.image_prefix),
            PAGE_COLS,
        ));
        out.push_str(SECTION3);
        out.push('\n');
        out.push_str(&format!(
            "geometry: cols={} rows={} cell_px={} origin={} nblocks={}\n",
            self.cols, self.rows, self.cell_px, self.origin_px, self.nblocks
        ));
        out.push_str(&format!(
            "frame: w={} h={} xoff={} yoff={}\n",
            self.frame_w, self.frame_h, self.xoff, self.yoff
        ));
        out.push_str(&format!("scheme: {}\n", self.scheme));
        out.push_str(&format!(
            "outer: data_per_group=17 parity_per_group=3 enabled={}\n",
            self.outer_parity as u8
        ));
        match &self.vault {
            None => out.push_str("vault: none\n"),
            Some(v) => {
                // The `parity=` token is only printed for multi-parity
                // groups: single-parity (m = 1) and unsharded documents
                // stay byte-identical to the pre-multi-parity format.
                let parity = if v.parity_reels >= 2 {
                    format!(" parity={}", v.parity_reels)
                } else {
                    String::new()
                };
                out.push_str(&format!(
                "vault: tables={} sys={} index={} data={} index_crc32={:08x} reel_cap={} group={}{parity}\n",
                v.tables,
                v.sys_len,
                v.index_len,
                v.data_len,
                v.index_crc32,
                v.reel_capacity,
                v.group_reels
            ));
            }
        }
        out.push_str(
            "layout: in_len=0x10 out_len=0x14 out_base_ptr=0x18 params=0x1C in_base=0x40\n",
        );
        out.push_str(SECTION4);
        out.push('\n');
        out.push_str(WALKTHROUGH);
        out
    }

    /// Parse a document produced by [`Bootstrap::to_text`] (or typed back
    /// in from the printed page).
    pub fn parse(text: &str) -> Result<Bootstrap, BootstrapParseError> {
        use BootstrapParseError as E;
        let sec2_full = text.split(SECTION2).nth(1).ok_or(E::MissingSection(2))?;
        let sec3 = sec2_full
            .split(SECTION3)
            .nth(1)
            .ok_or(E::MissingSection(3))?;
        let sec2 = sec2_full.split(SECTION3).next().unwrap_or("");
        let sec3 = sec3.split(SECTION4).next().unwrap_or(sec3);
        let mut lines = sec2.lines().filter(|l| !l.trim().is_empty());
        let words_line = lines.next().ok_or(E::MissingField("words"))?;
        let n_words: usize = field_value(words_line, "words:")?
            .trim()
            .parse()
            .map_err(|_| E::BadNumber("words"))?;
        let sym_line = lines.next().ok_or(E::MissingField("symbols"))?;
        let mut symbols = HashMap::new();
        for pair in field_value(sym_line, "symbols:")?.split_whitespace() {
            let (k, v) = pair.split_once('=').ok_or(E::MissingField("symbols"))?;
            symbols.insert(
                k.to_string(),
                v.parse().map_err(|_| E::BadNumber("symbols"))?,
            );
        }
        let cap_line = lines.next().ok_or(E::MissingField("prog-capacity"))?;
        let prog_capacity: usize = field_value(cap_line, "prog-capacity:")?
            .trim()
            .parse()
            .map_err(|_| E::BadNumber("prog-capacity"))?;
        // The letter block runs until SECTION 3.
        let letters_text = sec2
            .split_once("prog-capacity:")
            .map(|(_, rest)| rest.split_once('\n').map(|(_, l)| l).unwrap_or(""))
            .unwrap_or("");
        let image_prefix =
            letters::decode_words(letters_text).map_err(|e| E::Letters(e.to_string()))?;
        if image_prefix.len() != n_words {
            return Err(E::WordCount {
                expected: n_words,
                got: image_prefix.len(),
            });
        }
        let mut geometry = HashMap::new();
        let mut frame = HashMap::new();
        let mut scheme = None;
        let mut outer_parity = None;
        let mut vault = None;
        for line in sec3.lines() {
            let line = line.trim();
            if let Some(v) = line.strip_prefix("geometry:") {
                for pair in v.split_whitespace() {
                    if let Some((k, v)) = pair.split_once('=') {
                        geometry.insert(
                            k.to_string(),
                            v.parse::<usize>().map_err(|_| E::BadNumber("geometry"))?,
                        );
                    }
                }
            } else if let Some(v) = line.strip_prefix("frame:") {
                for pair in v.split_whitespace() {
                    if let Some((k, v)) = pair.split_once('=') {
                        frame.insert(
                            k.to_string(),
                            v.parse::<usize>().map_err(|_| E::BadNumber("frame"))?,
                        );
                    }
                }
            } else if let Some(v) = line.strip_prefix("scheme:") {
                scheme = Some(v.trim().parse::<u8>().map_err(|_| E::BadNumber("scheme"))?);
            } else if let Some(v) = line.strip_prefix("outer:") {
                for pair in v.split_whitespace() {
                    if let Some(("enabled", v)) = pair.split_once('=') {
                        outer_parity =
                            Some(v.parse::<u8>().map_err(|_| E::BadNumber("outer"))? != 0);
                    }
                }
            } else if let Some(v) = line.strip_prefix("vault:") {
                // Pre-S16 documents have no vault line at all; a present
                // line saying "none" is the classic-archive marker.
                if v.trim() != "none" {
                    let mut fields = HashMap::new();
                    let mut index_crc32 = None;
                    for pair in v.split_whitespace() {
                        if let Some((k, val)) = pair.split_once('=') {
                            if k == "index_crc32" {
                                index_crc32 = Some(
                                    u32::from_str_radix(val, 16)
                                        .map_err(|_| E::BadNumber("vault"))?,
                                );
                            } else {
                                fields.insert(
                                    k.to_string(),
                                    val.parse::<usize>().map_err(|_| E::BadNumber("vault"))?,
                                );
                            }
                        }
                    }
                    let vf = |k: &str| fields.get(k).copied().ok_or(E::MissingField("vault"));
                    let group_reels = vf("group")?;
                    vault = Some(VaultManifest {
                        tables: vf("tables")?,
                        sys_len: vf("sys")?,
                        index_len: vf("index")?,
                        data_len: vf("data")?,
                        // Required like every other field: a damaged-away
                        // CRC silently defaulting would mask the document
                        // defect behind permanent full-scan fallbacks.
                        index_crc32: index_crc32.ok_or(E::MissingField("vault"))?,
                        reel_capacity: vf("reel_cap")?,
                        group_reels,
                        // Absent on single-parity-era documents: one
                        // parity reel per group (or none when unsharded).
                        parity_reels: fields
                            .get("parity")
                            .copied()
                            .unwrap_or(usize::from(group_reels > 0)),
                    });
                }
            }
        }
        let g = |k: &str| geometry.get(k).copied().ok_or(E::MissingField("geometry"));
        let f = |k: &str| frame.get(k).copied().ok_or(E::MissingField("frame"));
        Ok(Bootstrap {
            image_prefix,
            symbols,
            prog_capacity,
            cols: g("cols")?,
            rows: g("rows")?,
            cell_px: g("cell_px")?,
            origin_px: g("origin")?,
            nblocks: g("nblocks")?,
            frame_w: f("w")?,
            frame_h: f("h")?,
            xoff: f("xoff")?,
            yoff: f("yoff")?,
            scheme: scheme.ok_or(E::MissingField("scheme"))?,
            // Documents printed before the outer line existed (or whose
            // line was damaged away) default to the dense no-parity
            // numbering those documents' walkthrough described — refusing
            // an otherwise-readable archival document would be worse than
            // a degraded-but-typed FrameLoss on a multi-group parity
            // stream.
            outer_parity: outer_parity.unwrap_or(false),
            vault,
        })
    }

    /// Page count at the document's nominal page size (the paper reports a
    /// seven-page bootstrap: four pseudocode + three letter pages).
    pub fn page_count(&self) -> (usize, usize) {
        let text = self.to_text();
        let letter_lines = self.image_prefix.len() * 8 / PAGE_COLS + 1;
        let total_lines = text.lines().count();
        let prose_lines = total_lines - letter_lines;
        (
            prose_lines.div_ceil(PAGE_LINES),
            letter_lines.div_ceil(PAGE_LINES),
        )
    }
}

fn field_value<'a>(line: &'a str, key: &'static str) -> Result<&'a str, BootstrapParseError> {
    line.trim()
        .strip_prefix(key)
        .ok_or(BootstrapParseError::MissingField(key))
}

/// Parse failures for the Bootstrap document.
#[derive(Debug, PartialEq, Eq)]
pub enum BootstrapParseError {
    MissingSection(u8),
    MissingField(&'static str),
    BadNumber(&'static str),
    Letters(String),
    WordCount { expected: usize, got: usize },
}

impl std::fmt::Display for BootstrapParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BootstrapParseError::MissingSection(n) => write!(f, "bootstrap section {n} missing"),
            BootstrapParseError::MissingField(k) => write!(f, "bootstrap field {k} missing"),
            BootstrapParseError::BadNumber(k) => write!(f, "bootstrap field {k} is not a number"),
            BootstrapParseError::Letters(e) => write!(f, "letter block: {e}"),
            BootstrapParseError::WordCount { expected, got } => {
                write!(
                    f,
                    "letter block decodes to {got} words, header says {expected}"
                )
            }
        }
    }
}

impl std::error::Error for BootstrapParseError {}

/// Human-readable restoration steps (section 4). Kept in prose: this is
/// the text a future restorer actually follows.
const WALKTHROUGH: &str = r#"
 1. Scan every frame. Separate the pages of this document from the
    emblem images (the squares with thick black borders).
 2. Implement the machine of SECTION 1 in any language. Verify it on
    the worked example in SECTION 1's notes.
 3. Decode SECTION 2's letters into 32-bit words (8 letters per word,
    A=15 … P=0, most significant first). This is the start of the
    machine's memory: it contains the DynaRisc processor emulator
    (as VeRisc code) and the emblem decoder MODECODE (as DynaRisc
    words in the PROG region listed in the symbols line).
 4. For each emblem image, in any order: convert the image to one
    byte per pixel (0 = black, 255 = white, threshold at 128). Build
    the decoder input after the image prefix: write the pixel count
    at word IN_LEN (see layout line), the pixels from word IN_BASE
    on (one byte per memory word), the output base at OUT_BASE_PTR,
    and the geometry words from the manifest at PARAMS. Set memory
    word 0 to 2 and run until the machine halts. The output region
    now holds 16 header bytes followed by the emblem's payload.
 5. Byte 1 of the header is the emblem kind: 0 = data, 1 = system,
    2 = parity. Bytes 2-3 are the emblem's sequence number. Collect
    the SYSTEM payloads in sequence order and concatenate them:
    this is DBDECODE, the database decompressor, as 16-bit little-
    endian DynaRisc words. Write those words over the PROG region,
    reset the state cells (DPC, SP, CFLAG, ZFLAG, NFLAG, all REGS
    and PTRS) to zero.
 6. Collect the DATA payloads in sequence order and concatenate
    them; place the result in the machine's memory as the new input
    (same layout as step 4, no geometry words needed). Run DBDECODE.
    The output region now holds the original SQL archive text.
    Note on sequence numbers: if the manifest's outer line says
    enabled=1, every group of 17 data (or system) emblems is followed
    by 3 parity emblems sharing the numbering, so the 18th data
    emblem carries sequence number 20, the 35th carries 40, and so
    on. Parity emblems are only needed when frames are lost; this
    walkthrough's sequential path ignores them.
    Vault note: if the manifest's vault line is not "none", the DATA
    stream is a catalog archive: a sequence of records, each a 4-byte
    little-endian length followed by that many bytes of one archive
    container. Run DBDECODE on each record in order and concatenate
    the outputs. Emblems of kind 3 carry a plain-text table-of-
    contents (read it to restore a single table without decoding the
    rest); kind 4 emblems belong to spare parity reels and are only
    needed when a whole reel is lost.
 7. Load the SQL file into any database system of your era.
"#;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Bootstrap {
        let mut symbols = HashMap::new();
        for (i, name) in [
            "DYNMEM", "PROG", "DPC", "SP", "CFLAG", "ZFLAG", "NFLAG", "REGS", "PTRS", "STACK",
        ]
        .iter()
        .enumerate()
        {
            symbols.insert(name.to_string(), 1000 + i as u32);
        }
        Bootstrap {
            image_prefix: (0..200u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect(),
            symbols,
            prog_capacity: 512,
            cols: 256,
            rows: 96,
            cell_px: 3,
            origin_px: 18,
            nblocks: 5,
            frame_w: 900,
            frame_h: 400,
            xoff: 48,
            yoff: 38,
            scheme: 2,
            outer_parity: true,
            vault: None,
        }
    }

    #[test]
    fn text_roundtrip() {
        let b = sample();
        let text = b.to_text();
        let parsed = Bootstrap::parse(&text).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn vault_manifest_roundtrips() {
        let mut b = sample();
        b.vault = Some(VaultManifest {
            tables: 8,
            sys_len: 412,
            index_len: 702,
            data_len: 68_342,
            index_crc32: 0xDEAD_BEEF,
            reel_capacity: 20,
            group_reels: 3,
            parity_reels: 1,
        });
        let text = b.to_text();
        assert!(text.contains("vault: tables=8"));
        assert_eq!(Bootstrap::parse(&text).unwrap(), b);
    }

    #[test]
    fn single_parity_vault_line_stays_byte_identical() {
        // A single-parity manifest must serialize to the exact pre-multi-
        // parity line (no `parity=` token), and an old-format line — this
        // literal pins the frozen wire text, no `ULE_REGEN_GOLDEN` ride —
        // must parse as one parity reel per group.
        let mut b = sample();
        b.vault = Some(VaultManifest {
            tables: 8,
            sys_len: 412,
            index_len: 702,
            data_len: 68_342,
            index_crc32: 0xDEAD_BEEF,
            reel_capacity: 20,
            group_reels: 3,
            parity_reels: 1,
        });
        let line = "vault: tables=8 sys=412 index=702 data=68342 \
                    index_crc32=deadbeef reel_cap=20 group=3";
        assert!(b.to_text().contains(&format!("{line}\n")));
        let parsed = Bootstrap::parse(&b.to_text()).unwrap();
        assert_eq!(parsed.vault.unwrap().parity_reels, 1);
    }

    #[test]
    fn multi_parity_vault_line_roundtrips() {
        let mut b = sample();
        b.vault = Some(VaultManifest {
            tables: 8,
            sys_len: 412,
            index_len: 702,
            data_len: 68_342,
            index_crc32: 0xDEAD_BEEF,
            reel_capacity: 20,
            group_reels: 3,
            parity_reels: 2,
        });
        let text = b.to_text();
        assert!(text.contains("group=3 parity=2\n"));
        assert_eq!(Bootstrap::parse(&text).unwrap(), b);
    }

    #[test]
    fn unsharded_vault_line_parses_with_zero_parity() {
        let mut b = sample();
        b.vault = Some(VaultManifest {
            tables: 2,
            sys_len: 10,
            index_len: 20,
            data_len: 30,
            index_crc32: 0xABCD_EF01,
            reel_capacity: 0,
            group_reels: 0,
            parity_reels: 0,
        });
        let text = b.to_text();
        assert!(!text.contains("parity="));
        assert_eq!(Bootstrap::parse(&text).unwrap(), b);
    }

    #[test]
    fn vault_line_without_index_crc_is_rejected() {
        // Every manifest field is required; a vault line that lost its
        // index_crc32 token must error, not default to 0 (which would
        // silently turn every selective restore into a full scan).
        let mut b = sample();
        b.vault = Some(VaultManifest {
            tables: 2,
            sys_len: 10,
            index_len: 20,
            data_len: 30,
            index_crc32: 0xABCD_EF01,
            reel_capacity: 0,
            group_reels: 0,
            parity_reels: 0,
        });
        let text = b.to_text().replace(" index_crc32=abcdef01", "");
        assert_eq!(
            Bootstrap::parse(&text),
            Err(BootstrapParseError::MissingField("vault"))
        );
    }

    #[test]
    fn missing_vault_line_parses_as_none() {
        // A pre-S16 document: strip the vault line entirely. The parse
        // must tolerate its absence, not demand the new field.
        let b = sample();
        let text: String = b
            .to_text()
            .lines()
            .filter(|l| !l.starts_with("vault:"))
            .map(|l| format!("{l}\n"))
            .collect();
        let parsed = Bootstrap::parse(&text).unwrap();
        assert_eq!(parsed.vault, None);
        assert_eq!(parsed, b);
    }

    #[test]
    fn document_contains_all_sections() {
        let text = sample().to_text();
        for s in [SECTION1, SECTION2, SECTION3, SECTION4] {
            assert!(text.contains(s), "missing {s}");
        }
        assert!(text.contains("LD"), "pseudocode embedded");
    }

    #[test]
    fn corrupted_letters_detected() {
        let b = sample();
        let text = b
            .to_text()
            .replace("prog-capacity: 512\n", "prog-capacity: 512\nZZZZZZZZ\n");
        assert!(matches!(
            Bootstrap::parse(&text),
            Err(BootstrapParseError::Letters(_))
        ));
    }

    #[test]
    fn missing_section_detected() {
        assert_eq!(
            Bootstrap::parse("nothing here"),
            Err(BootstrapParseError::MissingSection(2))
        );
    }

    #[test]
    fn page_count_is_reported() {
        let (prose, letter) = sample().page_count();
        assert!(prose >= 1);
        assert!(letter >= 1);
    }
}
