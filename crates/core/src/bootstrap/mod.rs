//! The Bootstrap document (system **S9**): the self-contained, plain-text
//! artifact that lets a future user rebuild the decoding stack.
//!
//! §3.2: "we convert the binary, VeRisc instruction stream corresponding
//! to MOCoder and DynaRisc emulators into a list of textual characters
//! using a text encoding where letters A to P are used to encode
//! hexadecimal values 0xF to 0x0 respectively. This list of characters is
//! stored together with a plain-text description of the VeRisc emulation
//! algorithm … The result … is a short, seven-page document."

pub mod document;
pub mod letters;
