//! The archival pipeline (Figure 2a, steps 1–7).

use crate::bootstrap::document::Bootstrap;
use ule_compress::Scheme;
use ule_dynarisc::programs::{dbdecode, modecode};
use ule_emblem::geometry::{EDGE_CELLS, QUIET_CELLS};
use ule_emblem::{encode_stream_traced, EmblemKind};
use ule_media::Medium;
use ule_obs::Telemetry;
use ule_par::ThreadConfig;
use ule_raster::GrayImage;
use ule_verisc::NestedEmulator;

/// Guest program cells reserved in the archived emulator image: MODecode
/// ships in the image; DBDecode (and future decoders up to this size) are
/// loaded into the same region during restoration.
pub const PROG_CAPACITY: usize = 1024;

/// The configured archival system.
#[derive(Clone)]
pub struct MicrOlonys {
    /// Target analog medium (geometry + degradation physics).
    pub medium: Medium,
    /// DBCoder scheme. `Scheme::Lzss` is the archival default: its decoder
    /// is the DynaRisc DBDecode stream stored as system emblems.
    pub scheme: Scheme,
    /// Whether to add the outer RS(20,17) parity emblems.
    pub with_parity: bool,
    /// Worker pool for the archive and native-restore hot paths (per-emblem
    /// encode/decode, inner/outer RS coding, frame rasterisation). Output
    /// is byte-identical at any setting — the on-medium format is frozen —
    /// so this only changes wall-clock time. Defaults to
    /// [`ThreadConfig::Serial`]; the emulated restore path ignores it and
    /// always runs sequentially (`DESIGN.md` §9: the Bootstrap walkthrough
    /// a future restorer follows is specified as a sequential procedure,
    /// and the fifty-years-from-now reimplementation must not need
    /// threads).
    pub threads: ThreadConfig,
}

/// Everything `archive` produces — the package that goes to the film
/// recorder / printer.
pub struct ArchiveOutput {
    /// Frames carrying the compressed database (data emblems).
    pub data_frames: Vec<GrayImage>,
    /// Frames carrying the DBDecode instruction stream (system emblems).
    pub system_frames: Vec<GrayImage>,
    /// The plain-text Bootstrap document.
    pub bootstrap: Bootstrap,
    pub stats: ArchiveStats,
}

/// Headline numbers of one archival run (E1's table row).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ArchiveStats {
    pub dump_bytes: usize,
    pub archive_bytes: usize,
    pub data_emblems: usize,
    pub system_emblems: usize,
    /// Source bytes per data frame — §4's "50KB per page" figure.
    pub density_per_frame: f64,
}

impl MicrOlonys {
    /// The configuration of the paper's §4 paper-archive experiment.
    pub fn paper_default() -> Self {
        Self {
            medium: Medium::paper_a4_600dpi(),
            scheme: Scheme::Lzss,
            with_parity: true,
            threads: ThreadConfig::Serial,
        }
    }

    /// Small configuration for tests and examples.
    pub fn test_tiny() -> Self {
        Self {
            medium: Medium::test_tiny(),
            scheme: Scheme::Lzss,
            with_parity: true,
            threads: ThreadConfig::Serial,
        }
    }

    /// This configuration with a different worker-pool setting (builder
    /// style: `MicrOlonys::paper_default().with_threads(ThreadConfig::Auto)`).
    pub fn with_threads(mut self, threads: ThreadConfig) -> Self {
        self.threads = threads;
        self
    }

    /// Archive a textual database dump: compress (DBCoder), lay out as
    /// emblems (MOCoder), render to media frames, and produce the
    /// Bootstrap document.
    pub fn archive(&self, dump: &[u8]) -> ArchiveOutput {
        self.archive_traced(dump, &Telemetry::off())
    }

    /// [`MicrOlonys::archive`] with pipeline telemetry: spans for the
    /// compress, encode and print stages plus codec/emblem counters. The
    /// recorder only observes — frames, Bootstrap and stats are
    /// byte-identical to the untraced path (the default [`Telemetry::off`]
    /// handle is a null check per call).
    pub fn archive_traced(&self, dump: &[u8], tel: &Telemetry) -> ArchiveOutput {
        let _span = tel.span("archive");
        let geom = self.medium.geometry;
        // Step 2: DBCoder. (Inherently sequential: LZSS match-finding and
        // the arithmetic coder both thread state through every byte.)
        let archive_bytes = ule_compress::compress_traced(self.scheme, dump, tel);
        // Step 3: MOCoder — data emblems, fanned out per emblem.
        let data_emblems = encode_stream_traced(
            &geom,
            EmblemKind::Data,
            &archive_bytes,
            self.with_parity,
            self.threads,
            tel,
        );
        // Steps 4–5: the DBCoder decoder as system emblems.
        let sys_bytes = Self::system_stream_bytes();
        let system_emblems = encode_stream_traced(
            &geom,
            EmblemKind::System,
            &sys_bytes,
            self.with_parity,
            self.threads,
            tel,
        );
        // Step 6: MODecode + the DynaRisc emulator into the Bootstrap.
        let bootstrap = self.make_bootstrap();
        // Step 7: physical layout on frames, one rasterisation job each.
        let (data_frames, system_frames) = {
            let _print = tel.span("archive.print");
            (
                self.medium.print_all_with(&data_emblems, self.threads),
                self.medium.print_all_with(&system_emblems, self.threads),
            )
        };
        tel.add("archive.data_frames", data_frames.len() as u64);
        tel.add("archive.system_frames", system_frames.len() as u64);
        let plan = ule_emblem::stream::plan(&geom, archive_bytes.len(), self.with_parity);
        let stats = ArchiveStats {
            dump_bytes: dump.len(),
            archive_bytes: archive_bytes.len(),
            data_emblems: plan.data_emblems,
            system_emblems: system_frames.len(),
            density_per_frame: dump.len() as f64 / plan.data_emblems as f64,
        };
        ArchiveOutput {
            data_frames,
            system_frames,
            bootstrap,
            stats,
        }
    }

    /// The DBDecode instruction stream serialized as bytes — the payload
    /// of the system emblem stream. Exposed so alternative archive layers
    /// (the vault, S16) ship the *same* decoder bytes the classic
    /// archiver does.
    pub fn system_stream_bytes() -> Vec<u8> {
        let db_words = dbdecode::program();
        let mut sys_bytes = Vec::with_capacity(db_words.len() * 2);
        for w in &db_words {
            sys_bytes.extend_from_slice(&w.to_le_bytes());
        }
        sys_bytes
    }

    /// Build the Bootstrap for this configuration (independent of any
    /// particular database — it describes the decoding stack).
    pub fn make_bootstrap(&self) -> Bootstrap {
        let geom = self.medium.geometry;
        let emulator = NestedEmulator::with_capacity(&modecode::program(), PROG_CAPACITY, &[]);
        let dynmem_base = emulator.symbols()["DYNMEM"] as usize;
        let image_prefix = emulator.image()[..dynmem_base].to_vec();
        let emblem_w = geom.image_width();
        let emblem_h = geom.image_height();
        Bootstrap {
            image_prefix,
            symbols: emulator.symbols().clone(),
            prog_capacity: PROG_CAPACITY,
            cols: geom.cols,
            rows: geom.rows,
            cell_px: geom.cell_px,
            origin_px: (QUIET_CELLS + EDGE_CELLS) * geom.cell_px,
            nblocks: geom.rs_blocks(),
            frame_w: self.medium.frame_width,
            frame_h: self.medium.frame_height,
            xoff: (self.medium.frame_width - emblem_w) / 2,
            yoff: (self.medium.frame_height - emblem_h) / 2,
            scheme: self.scheme as u8,
            outer_parity: self.with_parity,
            // The classic archiver writes single-container archives; the
            // vault layer (`ule_vault`) stamps its manifest on top.
            vault: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn archive_produces_all_three_artifact_kinds() {
        let sys = MicrOlonys::test_tiny();
        let dump = b"COPY t (a) FROM stdin;\n1\n2\n3\n\\.\n".repeat(20);
        let out = sys.archive(&dump);
        assert!(!out.data_frames.is_empty());
        assert!(!out.system_frames.is_empty());
        assert!(out.bootstrap.to_text().contains("SECTION 2"));
        assert_eq!(out.stats.dump_bytes, dump.len());
        assert!(out.stats.archive_bytes < dump.len(), "lzss should compress");
    }

    #[test]
    fn bootstrap_roundtrips_through_text() {
        let sys = MicrOlonys::test_tiny();
        let b = sys.make_bootstrap();
        let parsed = Bootstrap::parse(&b.to_text()).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn data_frames_include_parity_emblems() {
        let sys = MicrOlonys::test_tiny();
        let out = sys.archive(&vec![9u8; 10_000]);
        // With the outer code on, every group of ≤17 data emblems gains 3
        // parity emblems.
        let groups = out.stats.data_emblems.div_ceil(17);
        assert_eq!(out.data_frames.len(), out.stats.data_emblems + groups * 3);
    }

    #[test]
    fn micro_medium_archive_has_single_data_emblem() {
        let sys = MicrOlonys {
            medium: ule_media::Medium::test_micro(),
            scheme: Scheme::Lzss,
            with_parity: false,
            threads: ThreadConfig::Serial,
        };
        let dump = b"COPY t (a) FROM stdin;\n1\n\\.\n".to_vec();
        let out = sys.archive(&dump);
        assert_eq!(out.stats.data_emblems, 1);
        assert_eq!(out.data_frames.len(), 1);
    }

    #[test]
    fn dbdecode_fits_prog_capacity() {
        assert!(ule_dynarisc::programs::dbdecode::program().len() <= PROG_CAPACITY);
        assert!(ule_dynarisc::programs::modecode::program().len() <= PROG_CAPACITY);
    }
}
