//! Micr'Olonys — the end-to-end ULE archival system (the paper's primary
//! contribution, system **S12** in `DESIGN.md`).
//!
//! Universal Layout Emulation archives three things together on the
//! analog medium (Figure 2a):
//!
//! 1. **the data** — a textual database dump, compressed by DBCoder and
//!    laid out as *data emblems* by MOCoder;
//! 2. **the database layout decoder** — DBDecode, a DynaRisc instruction
//!    stream, itself stored as *system emblems*;
//! 3. **the media layout decoder and the emulator** — MODecode (DynaRisc)
//!    and the DynaRisc-emulator-in-VeRisc, rendered as letter pages inside
//!    the plain-text **Bootstrap** document together with the VeRisc
//!    machine description.
//!
//! Restoration (Figure 2b) therefore needs nothing but a scanner and a
//! from-scratch VeRisc interpreter: [`MicrOlonys::restore_emulated`] walks
//! the whole chain without calling any native decoder, while
//! [`MicrOlonys::restore_native`] is the fast path with full Reed–Solomon
//! damage recovery.
//!
//! The archive pipeline and the native restore fan their per-emblem work
//! out across a [`ThreadConfig`] worker pool (`MicrOlonys { threads,
//! .. }`), and the emulated restore fans its per-frame MODecode VM
//! instances out the same way (pick the engine with [`EmulationTier`]).
//! Output never depends on the thread count — the on-medium format is
//! frozen (`DESIGN.md` §9).

pub mod archiver;
pub mod bootstrap;
pub mod restorer;

pub use archiver::{ArchiveOutput, ArchiveStats, MicrOlonys};
pub use bootstrap::document::{Bootstrap, BootstrapParseError, VaultManifest};
pub use restorer::{EmulationTier, RestoreError, RestoreStats};
pub use ule_par::ThreadConfig;
