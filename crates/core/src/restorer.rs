//! Restoration (Figure 2b): native fast path and the fully emulated path.
//!
//! The emulated path is the ULE proof: starting from nothing but the
//! Bootstrap text and the scans, it
//!
//! 1. parses the Bootstrap (letters → the VeRisc memory image holding the
//!    DynaRisc emulator + MODecode);
//! 2. runs MODecode *under the selected [`EmulationTier`]* on every scan
//!    to extract emblem headers and payloads — one independent DynaRisc
//!    machine per scan, fanned out over `ule_par` (`DESIGN.md` §9);
//! 3. assembles the system payloads into the DBDecode instruction stream;
//! 4. runs DBDecode on the concatenated data payloads to recover the SQL
//!    archive.
//!
//! No native decoder is invoked on any tier: even the host-engine tiers
//! execute only the *archived* MODecode/DBDecode instruction streams, with
//! MODecode read back out of the Bootstrap's own image prefix.
//!
//! Host-side work is limited to what the Bootstrap explicitly delegates
//! to the restoring user: scanning, thresholding pixels, laying out the
//! decoder's input memory, and reading the output region — "any standard
//! image handling libraries can be used for automating this task" (§3.3).

use crate::archiver::MicrOlonys;
use crate::bootstrap::document::Bootstrap;
use ule_compress::ArchiveError;
use ule_dynarisc::layout;
use ule_dynarisc::programs::modecode::ModecodeParams;
use ule_dynarisc::programs::{dbdecode, modecode};
use ule_dynarisc::{ThreadedImage, Vm, VmError};
use ule_emblem::geometry::RS_K;
use ule_emblem::stream::{chunk_global_index, GROUP_DATA};
use ule_emblem::{decode_stream, decode_stream_traced, EmblemHeader, EmblemKind, StreamError};
use ule_gf256::crc::crc32_update;
use ule_obs::Telemetry;
use ule_par::ThreadConfig;
use ule_raster::GrayImage;
use ule_verisc::vm::{EngineKind, VeriscError};
use ule_verisc::NestedEmulator;

/// Restoration failures.
#[derive(Debug)]
pub enum RestoreError {
    /// Stream-level failure in the native path.
    Stream(StreamError),
    /// Archive container failed to decode.
    Archive(ArchiveError),
    /// The VeRisc machine faulted or ran out of budget.
    Verisc(VeriscError),
    /// A host DynaRisc machine faulted or ran out of budget
    /// ([`EmulationTier::Threaded`] / [`EmulationTier::Interpreter`]).
    DynaRisc(VmError),
    /// An emulated decoder reported a bad status word.
    DecoderStatus(u16),
    /// An emblem's header could not be parsed after emulated decode.
    BadHeader(usize),
    /// The emulated path found no system emblems (no decoder!).
    NoDecoder,
    /// Whole frames are missing — lost, or too damaged to decode — beyond
    /// what the restoration path can absorb (the emulated path has no
    /// outer-code recovery at all; the native path is limited by the
    /// outer code's budget). `expected`/`found` count the emblems of
    /// `kind`; `missing` lists the absent frames' global emblem indices,
    /// so the operator knows exactly which frames to hunt for.
    FrameLoss {
        kind: EmblemKind,
        expected: usize,
        found: usize,
        missing: Vec<usize>,
    },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Stream(e) => write!(f, "emblem stream: {e}"),
            RestoreError::Archive(e) => write!(f, "archive: {e}"),
            RestoreError::Verisc(e) => write!(f, "verisc: {e}"),
            RestoreError::DynaRisc(e) => write!(f, "dynarisc: {e}"),
            RestoreError::DecoderStatus(s) => write!(f, "emulated decoder status {s}"),
            RestoreError::BadHeader(i) => write!(f, "scan {i}: unparseable emblem header"),
            RestoreError::NoDecoder => write!(f, "no system emblems found"),
            RestoreError::FrameLoss {
                kind,
                expected,
                found,
                missing,
            } => write!(
                f,
                "frame loss: {found} of {expected} {kind:?} emblems present, missing indices {missing:?}"
            ),
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<StreamError> for RestoreError {
    fn from(e: StreamError) -> Self {
        RestoreError::Stream(e)
    }
}
impl From<ArchiveError> for RestoreError {
    fn from(e: ArchiveError) -> Self {
        RestoreError::Archive(e)
    }
}
impl From<VeriscError> for RestoreError {
    fn from(e: VeriscError) -> Self {
        RestoreError::Verisc(e)
    }
}
impl From<VmError> for RestoreError {
    fn from(e: VmError) -> Self {
        RestoreError::DynaRisc(e)
    }
}

/// Diagnostics from a restoration run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RestoreStats {
    pub scans: usize,
    pub emblems_recovered: usize,
    pub rs_corrected: usize,
    /// Symbol positions fixed by the inner Reed–Solomon code across every
    /// decoded frame. On the full native path this mirrors
    /// [`RestoreStats::rs_corrected`]; on the selective path
    /// ([`MicrOlonys::restore_frames`]) it surfaces the per-frame
    /// correction counts that were previously dropped on the floor.
    pub corrected_symbols: usize,
    /// Frame slots (data *and* parity) the outer code had to treat as
    /// erasures during recovery — the decode-health signal behind
    /// [`RestoreStats::emblems_recovered`], which only counts the data
    /// emblems actually rebuilt.
    pub erasure_frames: usize,
    /// Total VeRisc instructions executed ([`EmulationTier::Nested`] only).
    pub verisc_steps: u64,
    /// Total DynaRisc instructions executed on a host engine
    /// ([`EmulationTier::Threaded`] / [`EmulationTier::Interpreter`] only).
    pub guest_steps: u64,
    /// CRC-32 over the per-frame MODecode outputs, concatenated in scan
    /// input order (emulated path only). Two emulated runs decoded the
    /// same frames identically iff these match — the per-run identity
    /// check the E12 gate and `tests/parallel_identity.rs` compare across
    /// tiers and thread counts.
    pub frame_crc32: u32,
    /// Data payload bytes decoded.
    pub archive_bytes: usize,
}

/// Which engine stack hosts the archived decoders on the emulated path.
///
/// Every tier executes the same archived MODecode/DBDecode instruction
/// streams; they differ only in who runs DynaRisc:
///
/// * [`Threaded`](EmulationTier::Threaded) — the pre-compiled
///   direct-dispatch engine (`ule_dynarisc::threaded`). The production
///   tier: fastest, and the one E12 holds to a small constant factor of
///   the native decoder.
/// * [`Interpreter`](EmulationTier::Interpreter) — the reference
///   interpreter (`ule_dynarisc::vm`), whose `step` match is the ISA
///   specification.
/// * [`Nested`](EmulationTier::Nested) — the DynaRisc emulator *written
///   in VeRisc*, hosted by one of the three independent from-scratch
///   VeRisc interpreters: the paper's portability proof (E5/E7), slowest
///   by ~3 decimal orders.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EmulationTier {
    Threaded,
    Interpreter,
    Nested(EngineKind),
}

impl MicrOlonys {
    /// Native restoration: full damage tolerance (inner RS correction,
    /// outer-code erasure recovery), no emulation. The per-scan pipeline
    /// (locate → decode → inner RS errors correction) fans out across
    /// `self.threads`; the outer errors-and-erasures recovery joins the
    /// results in index order, so the restored bytes are identical at any
    /// thread count.
    pub fn restore_native(
        &self,
        data_scans: &[GrayImage],
    ) -> Result<(Vec<u8>, RestoreStats), RestoreError> {
        self.restore_native_traced(data_scans, &Telemetry::off())
    }

    /// [`MicrOlonys::restore_native`] with decode-health telemetry: a
    /// `restore.native` span over the whole pass, the per-frame RS and
    /// erasure counters from the stream decoder, and decompression codec
    /// counters. The recorder only observes — restored bytes and stats
    /// are identical to the untraced path.
    pub fn restore_native_traced(
        &self,
        data_scans: &[GrayImage],
        tel: &Telemetry,
    ) -> Result<(Vec<u8>, RestoreStats), RestoreError> {
        let _span = tel.span("restore.native");
        let geom = self.medium.geometry;
        let (archive, s) =
            decode_stream_traced(&geom, data_scans, self.threads, tel).map_err(|e| match e {
                // Surface lost frames as the structured top-level error so
                // campaign runners and operators see indices, not prose.
                StreamError::FrameLoss {
                    expected,
                    found,
                    missing,
                    ..
                } => RestoreError::FrameLoss {
                    kind: EmblemKind::Data,
                    expected,
                    found,
                    missing: missing.iter().map(|&i| i as usize).collect(),
                },
                other => RestoreError::Stream(other),
            })?;
        let dump = ule_compress::decompress_traced(&archive, tel)?;
        Ok((
            dump,
            RestoreStats {
                scans: s.scans,
                emblems_recovered: s.emblems_recovered,
                rs_corrected: s.rs_corrected,
                corrected_symbols: s.rs_corrected,
                erasure_frames: s.erasure_frames,
                archive_bytes: archive.len(),
                ..Default::default()
            },
        ))
    }

    /// Selective-restore primitive (S16, `DESIGN.md` §11): decode *only*
    /// the named scans — `(global emblem index, scan)` pairs, typically
    /// the frames a vault content index maps a single table to — fanned
    /// out across `self.threads`, and return each frame's payload keyed
    /// by its global emblem index, in input order.
    ///
    /// Unlike [`MicrOlonys::restore_native`] this does no outer-code
    /// recovery (the caller chose exactly these frames; recovery would
    /// need frames it deliberately did not scan). A scan that fails to
    /// decode, or whose decoded header names a different global index
    /// than the caller expected (a frame filed on the wrong spot of the
    /// shelf), is reported as [`RestoreError::FrameLoss`] naming the
    /// affected indices so the caller can escalate — fetch the group's
    /// parity frames, or fall back to a full scan.
    pub fn restore_frames(
        &self,
        scans: &[(usize, &GrayImage)],
    ) -> Result<Vec<(usize, Vec<u8>)>, RestoreError> {
        self.restore_frames_traced(scans, &Telemetry::off())
            .map(|(out, _)| out)
    }

    /// [`MicrOlonys::restore_frames`] that also returns the per-frame
    /// decode health the payload-only surface drops: a [`RestoreStats`]
    /// whose `corrected_symbols` aggregates the inner-RS fixes of every
    /// selectively decoded frame, plus frames-requested/decoded counters
    /// on the telemetry recorder.
    pub fn restore_frames_traced(
        &self,
        scans: &[(usize, &GrayImage)],
        tel: &Telemetry,
    ) -> Result<(Vec<(usize, Vec<u8>)>, RestoreStats), RestoreError> {
        let _span = tel.span("restore.selective");
        let geom = self.medium.geometry;
        let results =
            ule_par::map(
                self.threads,
                scans,
                |(expect, scan)| match ule_emblem::decode_emblem(&geom, scan) {
                    Ok((h, payload, ds)) if h.index as usize == *expect => {
                        Ok((*expect, payload, ds.rs_corrected))
                    }
                    _ => Err(*expect),
                },
            );
        let mut stats = RestoreStats {
            scans: scans.len(),
            ..Default::default()
        };
        let mut out = Vec::with_capacity(scans.len());
        let mut missing = Vec::new();
        for r in results {
            match r {
                Ok((idx, payload, fixed)) => {
                    stats.rs_corrected += fixed;
                    stats.corrected_symbols += fixed;
                    stats.archive_bytes += payload.len();
                    if fixed > 0 {
                        tel.add("decode.frames_corrected", 1);
                    }
                    out.push((idx, payload));
                }
                Err(idx) => missing.push(idx),
            }
        }
        tel.add("selective.frames_requested", scans.len() as u64);
        tel.add("selective.frames_decoded", out.len() as u64);
        tel.add("selective.frames_failed", missing.len() as u64);
        tel.add("decode.corrected_symbols", stats.corrected_symbols as u64);
        if !missing.is_empty() {
            return Err(RestoreError::FrameLoss {
                kind: EmblemKind::Data,
                expected: scans.len(),
                found: out.len(),
                missing,
            });
        }
        Ok((out, stats))
    }

    /// Verify that scanned system emblems really carry the DBDecode
    /// stream (a self-check the archiver can run before shipping media).
    pub fn verify_system_emblems(&self, system_scans: &[GrayImage]) -> Result<bool, RestoreError> {
        let geom = self.medium.geometry;
        let (sys_bytes, _) = decode_stream(&geom, system_scans)?;
        let expected: Vec<u8> = ule_dynarisc::programs::dbdecode::program()
            .iter()
            .flat_map(|w| w.to_le_bytes())
            .collect();
        Ok(sys_bytes == expected)
    }

    /// Fully emulated restoration from the Bootstrap text plus scans.
    ///
    /// `tier` selects who executes the archived decoders (see
    /// [`EmulationTier`]); every tier runs the same MODecode/DBDecode
    /// instruction streams and produces byte-identical output. Scans must
    /// be clean (pristine or lightly degraded) — the archived MODecode
    /// handles the paper's zero-error film scans; damaged media go through
    /// [`MicrOlonys::restore_native`].
    ///
    /// The per-scan MODecode runs fan out over `threads`: each scan's
    /// decode is a pure function of (Bootstrap, scan) on a private machine
    /// instance, `ule_par::map` joins results in input order, and
    /// everything order-sensitive (header parsing, stream assembly, stats
    /// accumulation, the frame CRC) happens after the join on the calling
    /// thread — so the restored bytes and [`RestoreStats::frame_crc32`]
    /// are identical at any thread count (`DESIGN.md` §9;
    /// `tests/parallel_identity.rs` is the proof). The final DBDecode pass
    /// consumes the *concatenated* stream and stays on the calling thread.
    pub fn restore_emulated(
        bootstrap_text: &str,
        scans: &[GrayImage],
        tier: EmulationTier,
        threads: ThreadConfig,
    ) -> Result<(Vec<u8>, RestoreStats), RestoreError> {
        Self::restore_emulated_traced(bootstrap_text, scans, tier, threads, &Telemetry::off())
    }

    /// [`MicrOlonys::restore_emulated`] with emulation telemetry: spans
    /// for the per-scan MODecode fan-out and the final DBDecode pass,
    /// guest/VeRisc step counters, and per-tier dispatch counts (one
    /// dispatch per guest program run). All recording happens on the
    /// calling thread after the `ule_par` join, in input order, so the
    /// restored bytes, stats and trace are identical at any thread count.
    pub fn restore_emulated_traced(
        bootstrap_text: &str,
        scans: &[GrayImage],
        tier: EmulationTier,
        threads: ThreadConfig,
        tel: &Telemetry,
    ) -> Result<(Vec<u8>, RestoreStats), RestoreError> {
        let _span = tel.span("restore.emulated");
        let boot = Bootstrap::parse(bootstrap_text)
            .map_err(|e| RestoreError::Archive(ArchiveError::Corrupt(e.to_string())))?;
        let mut stats = RestoreStats {
            scans: scans.len(),
            ..Default::default()
        };

        // Steps 1–4 per the walkthrough, once per scan, fanned out:
        // threshold pixels, lay out the decoder memory, run MODecode.
        // The host tiers read MODecode back out of the Bootstrap's image
        // prefix — the document, not the native codebase, supplies the
        // decoder on every tier.
        let outs: Vec<Result<(Vec<u8>, u64), RestoreError>> = {
            let _frames = tel.span("restore.emulated.frames");
            match tier {
                EmulationTier::Nested(kind) => ule_par::map(threads, scans, |scan| {
                    run_modecode_nested(&boot, scan, kind)
                }),
                _ => {
                    let runner = GuestRunner::for_tier(tier, modecode_from_prefix(&boot)?);
                    ule_par::map(threads, scans, |scan| {
                        run_modecode_hosted(&boot, scan, &runner)
                    })
                }
            }
        };
        tel.add("emulated.scans", scans.len() as u64);
        tel.add(
            &format!("emulated.dispatch.{}", tier_label(tier)),
            scans.len() as u64,
        );
        let mut decoded: Vec<(EmblemHeader, Vec<u8>)> = Vec::with_capacity(scans.len());
        let mut crc = 0xFFFF_FFFFu32;
        for (i, res) in outs.into_iter().enumerate() {
            let (out, steps) = res?;
            match tier {
                EmulationTier::Nested(_) => stats.verisc_steps += steps,
                _ => stats.guest_steps += steps,
            }
            crc = crc32_update(crc, &out);
            // The emulated decoder's output is untrusted: a hostile scan
            // can hand back fewer than 16 bytes, or a crafted header
            // whose payload length reaches past the buffer.
            let header = out
                .get(..16)
                .ok_or(RestoreError::BadHeader(i))
                .and_then(|h| {
                    EmblemHeader::from_bytes(h).map_err(|_| RestoreError::BadHeader(i))
                })?;
            let payload = out
                .get(16..16 + header.payload_len as usize)
                .ok_or(RestoreError::BadHeader(i))?
                .to_vec();
            decoded.push((header, payload));
        }
        stats.frame_crc32 = crc ^ 0xFFFF_FFFF;

        // Steps 5–6: assemble the DBDecode stream (system emblems) and the
        // data archive. Scans arrive in any order, possibly duplicated,
        // possibly with frames missing; `assemble_stream` sorts this out
        // and names any absent frame by its global emblem index.
        let chunk_cap = boot.nblocks * RS_K;
        let sys_bytes =
            assemble_stream(&decoded, EmblemKind::System, chunk_cap, boot.outer_parity)?;
        let dbdecode_words: Vec<u16> = sys_bytes
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes([c[0], c[1]]))
            .collect();

        let archive = assemble_stream(&decoded, EmblemKind::Data, chunk_cap, boot.outer_parity)?;
        stats.archive_bytes = archive.len();

        // Run DBDecode on the selected tier over the concatenated stream.
        let out_len = if archive.len() >= 14 {
            u64::from_le_bytes(archive[6..14].try_into().unwrap()) as usize
        } else {
            0
        };
        let (guest_mem, out_base) = layout::build_memory(&archive, out_len, &[]);
        let _dbdecode = tel.span("restore.emulated.dbdecode");
        tel.add(&format!("emulated.dispatch.{}", tier_label(tier)), 1);
        let guest = match tier {
            EmulationTier::Nested(kind) => {
                let mut emu = NestedEmulator::from_image_prefix(
                    &boot.image_prefix,
                    boot.symbols.clone(),
                    &guest_mem,
                );
                emu.load_guest_program(&dbdecode_words, boot.prog_capacity);
                emu.reset_guest();
                // ~5k VeRisc instructions per guest-decoded byte was
                // measured; budget 4× that for safety.
                let budget =
                    100_000u64.saturating_add(20_000 * (archive.len() as u64 + out_len as u64));
                stats.verisc_steps += emu.run(kind, budget)?;
                emu.dyn_mem()
            }
            _ => {
                let runner = GuestRunner::for_tier(tier, dbdecode_words);
                let fuel = dbdecode::step_budget(archive.len(), out_len);
                let (mem, steps) = runner.run(guest_mem, fuel)?;
                stats.guest_steps += steps;
                mem
            }
        };
        let status = u16::from_le_bytes([guest[0], guest[1]]);
        if status != 0 {
            return Err(RestoreError::DecoderStatus(status));
        }
        tel.add("emulated.guest_steps", stats.guest_steps);
        tel.add("emulated.verisc_steps", stats.verisc_steps);
        Ok((layout::read_output(&guest, out_base), stats))
    }
}

/// Telemetry label of an [`EmulationTier`] (the `emulated.dispatch.*`
/// counter family).
fn tier_label(tier: EmulationTier) -> &'static str {
    match tier {
        EmulationTier::Threaded => "threaded",
        EmulationTier::Interpreter => "interpreter",
        EmulationTier::Nested(_) => "nested",
    }
}

/// A host DynaRisc engine holding one archived program, shareable across
/// the per-scan fan-out ([`ThreadedImage`] is `Sync`; the interpreter
/// re-decodes from its own copy of the words).
enum GuestRunner {
    /// Reference interpreter — re-decodes every step.
    Interpreter(Vec<u16>),
    /// Pre-compiled threaded code — one handler pointer per word.
    Threaded(ThreadedImage),
}

impl GuestRunner {
    fn for_tier(tier: EmulationTier, program: Vec<u16>) -> GuestRunner {
        match tier {
            EmulationTier::Threaded => GuestRunner::Threaded(ThreadedImage::compile(&program)),
            _ => GuestRunner::Interpreter(program),
        }
    }

    /// Run the program to completion over `mem` under `fuel`; returns the
    /// final data memory and the DynaRisc instruction count.
    fn run(&self, mem: Vec<u8>, fuel: u64) -> Result<(Vec<u8>, u64), VmError> {
        match self {
            GuestRunner::Interpreter(words) => {
                let mut vm = Vm::new(words.clone(), mem);
                let steps = vm.run(fuel)?;
                Ok((vm.mem, steps))
            }
            GuestRunner::Threaded(image) => {
                let mut vm = image.instantiate(mem);
                let steps = vm.run(fuel)?;
                Ok((vm.mem, steps))
            }
        }
    }
}

/// Read the MODecode instruction stream back out of the Bootstrap's image
/// prefix (the `PROG` region of the archived VeRisc memory image, one
/// 16-bit word per cell). Trailing zero cells past the program's final RET
/// are unreachable and harmless.
fn modecode_from_prefix(boot: &Bootstrap) -> Result<Vec<u16>, RestoreError> {
    let corrupt = |msg: &str| RestoreError::Archive(ArchiveError::Corrupt(msg.to_string()));
    let base = *boot
        .symbols
        .get("PROG")
        .ok_or_else(|| corrupt("Bootstrap image lacks a PROG symbol"))? as usize;
    let end = base
        .checked_add(boot.prog_capacity)
        .filter(|&e| e <= boot.image_prefix.len())
        .ok_or_else(|| corrupt("Bootstrap PROG region exceeds the image prefix"))?;
    Ok(boot.image_prefix[base..end]
        .iter()
        .map(|&cell| cell as u16)
        .collect())
}

/// Reassemble one emblem stream (`kind`) from emulator-decoded emblems,
/// tolerating arbitrary order, duplicates, and interleaved other-kind
/// emblems. The emulated path has no outer-code recovery, so *every*
/// chunk must be present; a shortfall is reported as
/// [`RestoreError::FrameLoss`] naming the missing frames' global emblem
/// indices (derived from the Bootstrap's outer-layout line — sequence
/// numbers skip parity slots when the outer code is on).
fn assemble_stream(
    decoded: &[(EmblemHeader, Vec<u8>)],
    kind: EmblemKind,
    chunk_cap: usize,
    outer_parity: bool,
) -> Result<Vec<u8>, RestoreError> {
    let items: Vec<&(EmblemHeader, Vec<u8>)> =
        decoded.iter().filter(|(h, _)| h.kind == kind).collect();
    if items.is_empty() {
        // With zero emblems of the kind even the stream length is unknown;
        // a missing decoder gets its dedicated error, data gets the
        // minimal truthful report (at least emblem 0 is gone).
        if kind == EmblemKind::System {
            return Err(RestoreError::NoDecoder);
        }
        return Err(RestoreError::FrameLoss {
            kind,
            expected: 1,
            found: 0,
            missing: vec![0],
        });
    }
    let total = items[0].0.total_len as usize;
    let expected_chunks = total.div_ceil(chunk_cap.max(1)).max(1);
    let mut chunks: Vec<Option<&[u8]>> = vec![None; expected_chunks];
    for (h, p) in items {
        let idx = h.index as usize;
        let group = h.group as usize;
        let start = chunk_global_index(group * GROUP_DATA, outer_parity);
        // An index outside the group's own data range is a malformed
        // header; rejecting it keeps garbage from displacing the genuine
        // chunk (first copy wins below) — the slot stays missing instead.
        if idx < start || idx - start >= GROUP_DATA {
            continue;
        }
        let chunk = group * GROUP_DATA + (idx - start);
        if chunk < expected_chunks && chunks[chunk].is_none() {
            chunks[chunk] = Some(p.as_slice());
        }
    }
    let missing: Vec<usize> = chunks
        .iter()
        .enumerate()
        .filter(|(_, c)| c.is_none())
        .map(|(c, _)| chunk_global_index(c, outer_parity))
        .collect();
    if !missing.is_empty() {
        return Err(RestoreError::FrameLoss {
            kind,
            expected: expected_chunks,
            found: expected_chunks - missing.len(),
            missing,
        });
    }
    let mut out = Vec::with_capacity(total);
    for c in &chunks {
        out.extend_from_slice(c.expect("missing chunks rejected above"));
    }
    if out.len() < total {
        // Every expected emblem arrived but the bytes fall short: an
        // emblem's payload was truncated, i.e. content corruption rather
        // than frame loss.
        return Err(RestoreError::Archive(ArchiveError::Corrupt(format!(
            "{kind:?} stream holds {} bytes, headers promise {total}",
            out.len()
        ))));
    }
    out.truncate(total);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic decoded-emblem list: `n_chunks` chunks of `cap` bytes
    /// (the last one short by `tail_short`), laid out with or without
    /// outer parity.
    fn stream(
        kind: EmblemKind,
        n_chunks: usize,
        cap: usize,
        tail_short: usize,
        outer_parity: bool,
    ) -> Vec<(EmblemHeader, Vec<u8>)> {
        let total = n_chunks * cap - tail_short;
        (0..n_chunks)
            .map(|c| {
                let len = if c + 1 == n_chunks {
                    cap - tail_short
                } else {
                    cap
                };
                let h = EmblemHeader::new(
                    kind,
                    chunk_global_index(c, outer_parity) as u16,
                    (c / GROUP_DATA) as u16,
                    len as u32,
                    total as u32,
                );
                (h, vec![c as u8; len])
            })
            .collect()
    }

    #[test]
    fn parity_layout_index_mapping() {
        assert_eq!(chunk_global_index(0, true), 0);
        assert_eq!(chunk_global_index(16, true), 16);
        // Chunk 17 opens group 1 *after* group 0's three parity emblems.
        assert_eq!(chunk_global_index(17, true), 20);
        assert_eq!(chunk_global_index(34, true), 40);
        assert_eq!(chunk_global_index(17, false), 17);
    }

    #[test]
    fn multi_group_parity_stream_assembles() {
        // 20 chunks span two groups; under the parity layout the second
        // group's indices are shifted by 3 — the dense-index assumption
        // this used to hide.
        let decoded = stream(EmblemKind::Data, 20, 8, 3, true);
        let out = assemble_stream(&decoded, EmblemKind::Data, 8, true).unwrap();
        assert_eq!(out.len(), 20 * 8 - 3);
        assert_eq!(out[17 * 8], 17, "group-1 chunks land at the right offset");
    }

    #[test]
    fn missing_chunks_named_by_global_index() {
        let mut decoded = stream(EmblemKind::Data, 20, 8, 0, true);
        decoded.remove(18); // chunk 18 = global emblem index 21
        decoded.remove(2); // chunk 2 = global emblem index 2
        match assemble_stream(&decoded, EmblemKind::Data, 8, true) {
            Err(RestoreError::FrameLoss {
                kind,
                expected,
                found,
                missing,
            }) => {
                assert_eq!(kind, EmblemKind::Data);
                assert_eq!(expected, 20);
                assert_eq!(found, 18);
                assert_eq!(missing, vec![2, 21]);
            }
            other => panic!("expected FrameLoss, got {other:?}"),
        }
    }

    #[test]
    fn duplicates_and_shuffle_are_harmless() {
        let mut decoded = stream(EmblemKind::System, 5, 4, 1, false);
        let dup = decoded[3].clone();
        decoded.push(dup);
        decoded.reverse();
        let out = assemble_stream(&decoded, EmblemKind::System, 4, false).unwrap();
        assert_eq!(out.len(), 19);
        assert_eq!(out[0], 0);
        assert_eq!(out[16], 4);
    }

    #[test]
    fn truncated_payload_is_corruption_not_frame_loss() {
        let mut decoded = stream(EmblemKind::Data, 3, 6, 0, false);
        decoded[1].1.truncate(2); // chunk present, bytes short
        match assemble_stream(&decoded, EmblemKind::Data, 6, false) {
            Err(RestoreError::Archive(ArchiveError::Corrupt(_))) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn restore_frames_decodes_only_the_named_scans() {
        let sys = MicrOlonys::test_tiny();
        let dump: Vec<u8> = (0..4000u64)
            .flat_map(|i| format!("{}\n", i.wrapping_mul(0x9E37_79B9) % 1_000_000_007).into_bytes())
            .collect();
        let out = sys.archive(&dump);
        assert!(out.stats.data_emblems > 5, "want indices 1/4/2 on data");
        let scans = sys.medium.scan_all(&out.data_frames, 19);
        // Emission order == global index order, so frame i carries index i.
        let picks: Vec<(usize, &ule_raster::GrayImage)> =
            [1usize, 4, 2].iter().map(|&i| (i, &scans[i])).collect();
        let got = sys.restore_frames(&picks).unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(
            got.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![1, 4, 2],
            "input order preserved"
        );
        // Payloads must match the full-restore bytes chunk for chunk.
        let cap = sys.medium.geometry.payload_capacity();
        let archive = ule_compress::compress(sys.scheme, &dump);
        for (idx, payload) in &got {
            // Indices 1/4/2 sit in group 0's data range: chunk == index.
            let start = idx * cap;
            assert_eq!(payload.as_slice(), &archive[start..start + payload.len()]);
        }
    }

    #[test]
    fn restore_frames_names_misfiled_and_undecodable_scans() {
        let sys = MicrOlonys::test_tiny();
        let dump = b"COPY t (a) FROM stdin;\n1\n2\n\\.\n".repeat(40);
        let out = sys.archive(&dump);
        let scans = sys.medium.scan_all(&out.data_frames, 23);
        let blank = ule_raster::GrayImage::new(scans[0].width(), scans[0].height(), 255);
        // Scan 2 handed in under index 1 (misfiled), a blank under 3.
        let picks: Vec<(usize, &ule_raster::GrayImage)> =
            vec![(0, &scans[0]), (1, &scans[2]), (3, &blank)];
        match sys.restore_frames(&picks) {
            Err(RestoreError::FrameLoss {
                expected,
                found,
                missing,
                ..
            }) => {
                assert_eq!(expected, 3);
                assert_eq!(found, 1);
                assert_eq!(missing, vec![1, 3]);
            }
            other => panic!("expected FrameLoss, got {other:?}"),
        }
    }

    #[test]
    fn empty_kind_reports_no_decoder_or_loss() {
        let decoded = stream(EmblemKind::Data, 2, 4, 0, false);
        assert!(matches!(
            assemble_stream(&decoded, EmblemKind::System, 4, false),
            Err(RestoreError::NoDecoder)
        ));
        let decoded = stream(EmblemKind::System, 2, 4, 0, false);
        assert!(matches!(
            assemble_stream(&decoded, EmblemKind::Data, 4, false),
            Err(RestoreError::FrameLoss { missing, .. }) if missing == vec![0]
        ));
    }
}

/// Host-side preprocessing sanctioned by the Bootstrap — pixel array
/// (threshold 128) plus the MODecode parameter block and its laid-out
/// guest memory.
fn modecode_memory(boot: &Bootstrap, scan: &GrayImage) -> (Vec<u8>, u32, ModecodeParams) {
    let pixels: Vec<u8> = scan
        .as_bytes()
        .iter()
        .map(|&p| if p < 128 { 0u8 } else { 255 })
        .collect();
    let params = ModecodeParams {
        width: scan.width() as u16,
        height: scan.height() as u16,
        cols: boot.cols as u16,
        rows: boot.rows as u16,
        cell_px: boot.cell_px as u16,
        origin_px: boot.origin_px as u16,
        nblocks: boot.nblocks as u16,
        xoff: boot.xoff as u16,
        yoff: boot.yoff as u16,
    };
    let max_out = 16 + 2 * boot.nblocks * 255 + 64;
    let (guest_mem, out_base) = layout::build_memory(&pixels, max_out, &params.to_words());
    (guest_mem, out_base, params)
}

/// Run MODecode inside the nested VeRisc emulator for one scan. Returns
/// the output region and the VeRisc instruction count.
fn run_modecode_nested(
    boot: &Bootstrap,
    scan: &GrayImage,
    engine: EngineKind,
) -> Result<(Vec<u8>, u64), RestoreError> {
    let (guest_mem, out_base, _) = modecode_memory(boot, scan);
    let mut emu =
        NestedEmulator::from_image_prefix(&boot.image_prefix, boot.symbols.clone(), &guest_mem);
    emu.reset_guest();
    let cells = boot.cols as u64 * boot.rows as u64;
    let budget = 2_000_000u64.saturating_add(cells * 60_000);
    let steps = emu.run(engine, budget)?;
    let guest = emu.dyn_mem();
    let status = u16::from_le_bytes([guest[0], guest[1]]);
    if status != 0 {
        return Err(RestoreError::DecoderStatus(status));
    }
    Ok((layout::read_output(&guest, out_base), steps))
}

/// Run MODecode on a host DynaRisc engine for one scan. Returns the
/// output region and the DynaRisc instruction count.
fn run_modecode_hosted(
    boot: &Bootstrap,
    scan: &GrayImage,
    runner: &GuestRunner,
) -> Result<(Vec<u8>, u64), RestoreError> {
    let (guest_mem, out_base, params) = modecode_memory(boot, scan);
    let (mem, steps) = runner.run(guest_mem, modecode::step_budget(&params))?;
    let status = u16::from_le_bytes([mem[0], mem[1]]);
    if status != 0 {
        return Err(RestoreError::DecoderStatus(status));
    }
    Ok((layout::read_output(&mem, out_base), steps))
}
