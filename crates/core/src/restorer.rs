//! Restoration (Figure 2b): native fast path and the fully emulated path.
//!
//! The emulated path is the ULE proof: starting from nothing but the
//! Bootstrap text and the scans, it
//!
//! 1. parses the Bootstrap (letters → the VeRisc memory image holding the
//!    DynaRisc emulator + MODecode);
//! 2. runs MODecode *inside the nested emulator* on every scan to extract
//!    emblem headers and payloads;
//! 3. assembles the system payloads into the DBDecode instruction stream
//!    and loads it into the emulator's guest program region;
//! 4. runs DBDecode on the concatenated data payloads to recover the SQL
//!    archive.
//!
//! Host-side work is limited to what the Bootstrap explicitly delegates
//! to the restoring user: scanning, thresholding pixels, laying out the
//! decoder's input memory, and reading the output region — "any standard
//! image handling libraries can be used for automating this task" (§3.3).

use crate::archiver::MicrOlonys;
use crate::bootstrap::document::Bootstrap;
use ule_compress::ArchiveError;
use ule_dynarisc::layout;
use ule_emblem::{decode_stream, decode_stream_with, EmblemHeader, EmblemKind, StreamError};
use ule_raster::GrayImage;
use ule_verisc::vm::{EngineKind, VeriscError};
use ule_verisc::NestedEmulator;

/// Restoration failures.
#[derive(Debug)]
pub enum RestoreError {
    /// Stream-level failure in the native path.
    Stream(StreamError),
    /// Archive container failed to decode.
    Archive(ArchiveError),
    /// The VeRisc machine faulted or ran out of budget.
    Verisc(VeriscError),
    /// An emulated decoder reported a bad status word.
    DecoderStatus(u16),
    /// An emblem's header could not be parsed after emulated decode.
    BadHeader(usize),
    /// The emulated path found no system emblems (no decoder!).
    NoDecoder,
    /// Data emblems missing in the emulated path (it has no outer-code
    /// recovery; use the native path for damaged media).
    MissingData { index: usize },
    /// System emblems missing in the emulated path: the DBDecode
    /// instruction stream cannot be assembled.
    MissingSystem { index: usize },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Stream(e) => write!(f, "emblem stream: {e}"),
            RestoreError::Archive(e) => write!(f, "archive: {e}"),
            RestoreError::Verisc(e) => write!(f, "verisc: {e}"),
            RestoreError::DecoderStatus(s) => write!(f, "emulated decoder status {s}"),
            RestoreError::BadHeader(i) => write!(f, "scan {i}: unparseable emblem header"),
            RestoreError::NoDecoder => write!(f, "no system emblems found"),
            RestoreError::MissingData { index } => {
                write!(f, "data emblem {index} missing (emulated path needs all)")
            }
            RestoreError::MissingSystem { index } => {
                write!(f, "system emblem {index} missing (DBDecode incomplete)")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<StreamError> for RestoreError {
    fn from(e: StreamError) -> Self {
        RestoreError::Stream(e)
    }
}
impl From<ArchiveError> for RestoreError {
    fn from(e: ArchiveError) -> Self {
        RestoreError::Archive(e)
    }
}
impl From<VeriscError> for RestoreError {
    fn from(e: VeriscError) -> Self {
        RestoreError::Verisc(e)
    }
}

/// Diagnostics from a restoration run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RestoreStats {
    pub scans: usize,
    pub emblems_recovered: usize,
    pub rs_corrected: usize,
    /// Total VeRisc instructions executed (emulated path only).
    pub verisc_steps: u64,
    /// Data payload bytes decoded.
    pub archive_bytes: usize,
}

impl MicrOlonys {
    /// Native restoration: full damage tolerance (inner RS correction,
    /// outer-code erasure recovery), no emulation. The per-scan pipeline
    /// (locate → decode → inner RS errors correction) fans out across
    /// `self.threads`; the outer errors-and-erasures recovery joins the
    /// results in index order, so the restored bytes are identical at any
    /// thread count.
    pub fn restore_native(
        &self,
        data_scans: &[GrayImage],
    ) -> Result<(Vec<u8>, RestoreStats), RestoreError> {
        let geom = self.medium.geometry;
        let (archive, s) = decode_stream_with(&geom, data_scans, self.threads)?;
        let dump = ule_compress::decompress(&archive)?;
        Ok((
            dump,
            RestoreStats {
                scans: s.scans,
                emblems_recovered: s.emblems_recovered,
                rs_corrected: s.rs_corrected,
                verisc_steps: 0,
                archive_bytes: archive.len(),
            },
        ))
    }

    /// Verify that scanned system emblems really carry the DBDecode
    /// stream (a self-check the archiver can run before shipping media).
    pub fn verify_system_emblems(&self, system_scans: &[GrayImage]) -> Result<bool, RestoreError> {
        let geom = self.medium.geometry;
        let (sys_bytes, _) = decode_stream(&geom, system_scans)?;
        let expected: Vec<u8> = ule_dynarisc::programs::dbdecode::program()
            .iter()
            .flat_map(|w| w.to_le_bytes())
            .collect();
        Ok(sys_bytes == expected)
    }

    /// Fully emulated restoration from the Bootstrap text plus scans.
    ///
    /// `engine` selects which of the three independent VeRisc interpreter
    /// implementations hosts the whole stack. Scans must be clean
    /// (pristine or lightly degraded) — the archived MODecode handles the
    /// paper's zero-error film scans; damaged media go through
    /// [`MicrOlonys::restore_native`].
    ///
    /// This path is sequential **by design** and takes no
    /// [`ule_par::ThreadConfig`]: it mechanises the Bootstrap walkthrough a
    /// future restorer follows by hand, and that document specifies a
    /// sequential procedure a from-scratch interpreter written in any
    /// language must be able to reproduce (`DESIGN.md` §9).
    /// `tests/parallel_identity.rs` asserts its output matches the
    /// (parallelisable) native path bit for bit.
    pub fn restore_emulated(
        bootstrap_text: &str,
        scans: &[GrayImage],
        engine: EngineKind,
    ) -> Result<(Vec<u8>, RestoreStats), RestoreError> {
        let boot = Bootstrap::parse(bootstrap_text)
            .map_err(|e| RestoreError::Archive(ArchiveError::Corrupt(e.to_string())))?;
        let mut stats = RestoreStats {
            scans: scans.len(),
            ..Default::default()
        };

        // Step 1 per the walkthrough: threshold pixels.
        let mut decoded: Vec<(EmblemHeader, Vec<u8>)> = Vec::with_capacity(scans.len());
        for (i, scan) in scans.iter().enumerate() {
            let out = run_modecode_emulated(&boot, scan, engine, &mut stats)?;
            let header =
                EmblemHeader::from_bytes(&out[..16]).map_err(|_| RestoreError::BadHeader(i))?;
            let payload = out[16..16 + header.payload_len as usize].to_vec();
            decoded.push((header, payload));
        }

        // Step 5: assemble DBDecode from system emblems.
        let mut system: Vec<&(EmblemHeader, Vec<u8>)> = decoded
            .iter()
            .filter(|(h, _)| h.kind == EmblemKind::System)
            .collect();
        if system.is_empty() {
            return Err(RestoreError::NoDecoder);
        }
        system.sort_by_key(|(h, _)| h.index);
        // The caller may hand us redundant scans of the same frame.
        system.dedup_by_key(|(h, _)| h.index);
        // System emblem indices are contiguous from 0; a gap would splice a
        // garbled DBDecode program and fail far from the real cause.
        for (expected, (h, _)) in system.iter().enumerate() {
            if h.index as usize != expected {
                return Err(RestoreError::MissingSystem { index: expected });
            }
        }
        let mut sys_bytes = Vec::new();
        for (_, p) in &system {
            sys_bytes.extend_from_slice(p);
        }
        // Contiguous indices with too few bytes means the tail of the
        // DBDecode stream never arrived; running a truncated program would
        // fail far from the cause (or, worse, happen to "work").
        let sys_total = system
            .first()
            .map(|(h, _)| h.total_len as usize)
            .unwrap_or(0);
        if sys_bytes.len() < sys_total {
            return Err(RestoreError::MissingSystem {
                index: system.len(),
            });
        }
        sys_bytes.truncate(sys_total);
        let dbdecode_words: Vec<u16> = sys_bytes
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes([c[0], c[1]]))
            .collect();

        // Step 6: assemble the data archive.
        let mut data: Vec<&(EmblemHeader, Vec<u8>)> = decoded
            .iter()
            .filter(|(h, _)| h.kind == EmblemKind::Data)
            .collect();
        data.sort_by_key(|(h, _)| h.index);
        // Redundant scans of the same frame must not concatenate twice.
        data.dedup_by_key(|(h, _)| h.index);
        // Even an empty dump occupies one data emblem, so an empty set here
        // means emblem 0 never arrived (otherwise `total` would be 0 and the
        // shortfall check below could not fire).
        if data.is_empty() {
            return Err(RestoreError::MissingData { index: 0 });
        }
        let total = data.first().map(|(h, _)| h.total_len as usize).unwrap_or(0);
        let mut archive = Vec::with_capacity(total);
        // Data emblem indices are contiguous from 0; the first gap in the
        // sorted sequence names the missing emblem.
        let mut first_gap = None;
        for (expected, (h, p)) in data.iter().enumerate() {
            if first_gap.is_none() && h.index as usize != expected {
                first_gap = Some(expected);
            }
            archive.extend_from_slice(p);
        }
        // A gap is fatal even when the byte count happens to add up (payload
        // sizes can coincide); a shortfall with contiguous indices means the
        // tail emblems never arrived.
        if let Some(index) = first_gap {
            return Err(RestoreError::MissingData { index });
        }
        if archive.len() < total {
            return Err(RestoreError::MissingData { index: data.len() });
        }
        archive.truncate(total);
        stats.archive_bytes = archive.len();

        // Run DBDecode inside the emulator.
        let out_len = if archive.len() >= 14 {
            u64::from_le_bytes(archive[6..14].try_into().unwrap()) as usize
        } else {
            0
        };
        let (guest_mem, out_base) = layout::build_memory(&archive, out_len, &[]);
        let mut emu =
            NestedEmulator::from_image_prefix(&boot.image_prefix, boot.symbols.clone(), &guest_mem);
        emu.load_guest_program(&dbdecode_words, boot.prog_capacity);
        emu.reset_guest();
        // ~5k VeRisc instructions per guest-decoded byte was measured;
        // budget 4× that for safety.
        let budget = 100_000u64.saturating_add(20_000 * (archive.len() as u64 + out_len as u64));
        stats.verisc_steps += emu.run(engine, budget)?;
        let guest = emu.dyn_mem();
        let status = u16::from_le_bytes([guest[0], guest[1]]);
        if status != 0 {
            return Err(RestoreError::DecoderStatus(status));
        }
        Ok((layout::read_output(&guest, out_base), stats))
    }
}

/// Run MODecode inside the nested emulator for one scan.
fn run_modecode_emulated(
    boot: &Bootstrap,
    scan: &GrayImage,
    engine: EngineKind,
    stats: &mut RestoreStats,
) -> Result<Vec<u8>, RestoreError> {
    // Host-side preprocessing sanctioned by the Bootstrap: pixel array,
    // threshold 128.
    let pixels: Vec<u8> = scan
        .as_bytes()
        .iter()
        .map(|&p| if p < 128 { 0u8 } else { 255 })
        .collect();
    let params = [
        scan.width() as u16,
        scan.height() as u16,
        boot.cols as u16,
        boot.rows as u16,
        boot.cell_px as u16,
        boot.origin_px as u16,
        boot.nblocks as u16,
        boot.xoff as u16,
        boot.yoff as u16,
    ];
    let max_out = 16 + 2 * boot.nblocks * 255 + 64;
    let (guest_mem, out_base) = layout::build_memory(&pixels, max_out, &params);
    let mut emu =
        NestedEmulator::from_image_prefix(&boot.image_prefix, boot.symbols.clone(), &guest_mem);
    emu.reset_guest();
    let cells = boot.cols as u64 * boot.rows as u64;
    let budget = 2_000_000u64.saturating_add(cells * 60_000);
    stats.verisc_steps += emu.run(engine, budget)?;
    let guest = emu.dyn_mem();
    let status = u16::from_le_bytes([guest[0], guest[1]]);
    if status != 0 {
        return Err(RestoreError::DecoderStatus(status));
    }
    Ok(layout::read_output(&guest, out_base))
}
