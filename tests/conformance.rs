//! Spec-tied conformance corpus (`DESIGN.md` §13).
//!
//! Every DynaRisc instruction, every VeRisc instruction, and every field
//! of the three archival wire formats (ULEA container, emblem header,
//! vault content index) is pinned by a named fixture file under
//! `tests/conformance/`. The fixtures are plain text so a reviewer can
//! diff the spec surface without reading loader code:
//!
//! * `dynarisc/*.txt` — one file per mnemonic: the canonical `asm:` line
//!   with its golden `words:` encoding (regenerate with
//!   `ULE_REGEN_GOLDEN=1`), plus a `program:` that executes the
//!   instruction on **both** DynaRisc engines — reference interpreter and
//!   threaded code — which must agree bit-for-bit before the `expect:`
//!   post-state assertions are checked;
//! * `verisc/*.txt` — a `mem:` image run on **all three** engine
//!   implementations, which must agree bit-for-bit before any `expect:`
//!   is checked;
//! * `ulea/*.txt` — build a container, corrupt one field byte, name the
//!   `ArchiveError` variant that must come back;
//! * `emblem/*.txt` — same per-field treatment for the 16-byte header
//!   (with optional CRC re-stamping to reach post-CRC validation);
//! * `catalog/*.txt` — raw content-index text after a `---` separator
//!   (`{crc}` substitutes the correct trailing CRC), with the expected
//!   `IndexError` variant.
//!
//! A fixture failure names the file, so "which spec field broke" is the
//! first line of the assertion message.

use std::fs;
use std::path::{Path, PathBuf};

use ule::compress::{compress, decompress, Scheme};
use ule::dynarisc::text_asm::assemble;
use ule::dynarisc::{ThreadedImage, Vm};
use ule::emblem::header::{HeaderError, HEADER_BYTES};
use ule::emblem::{EmblemHeader, EmblemKind};
use ule::gf256::crc::{crc16_ccitt, crc32};
use ule::vault::catalog::ContentIndex;
use ule::verisc::{Engine, EngineKind};

// ---------------------------------------------------------------- common

fn corpus_files(sub: &str) -> Vec<PathBuf> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/conformance")
        .join(sub);
    let mut files: Vec<_> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("conformance dir {}: {e}", dir.display()))
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().map_or(false, |e| e == "txt"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no fixtures under {}", dir.display());
    files
}

/// Split a fixture into `key: value` lines and the optional raw body
/// after a `---` separator line. `#`-prefixed lines are comments.
fn parse_fixture(text: &str) -> (Vec<(String, String)>, Option<String>) {
    let mut kv = Vec::new();
    let mut lines = text.lines();
    for line in lines.by_ref() {
        let t = line.trim();
        if t == "---" {
            let body: String = lines.map(|l| format!("{l}\n")).collect();
            return (kv, Some(body));
        }
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let (k, v) = t
            .split_once(':')
            .unwrap_or_else(|| panic!("fixture line without key: {t:?}"));
        kv.push((k.trim().to_string(), v.trim().to_string()));
    }
    (kv, None)
}

fn get<'a>(kv: &'a [(String, String)], key: &str) -> Option<&'a str> {
    kv.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

fn get_all<'a>(kv: &'a [(String, String)], key: &str) -> Vec<&'a str> {
    kv.iter()
        .filter(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
        .collect()
}

fn num(s: &str) -> u64 {
    let s = s.trim();
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(h) => u64::from_str_radix(h, 16),
        None => s.parse(),
    }
    .unwrap_or_else(|_| panic!("bad number {s:?}"))
}

fn stem(path: &Path) -> &str {
    path.file_stem()
        .and_then(|s| s.to_str())
        .expect("utf-8 name")
}

/// `corrupt: xor 0xff` / `corrupt: set 0x09` applied at `offset:`.
fn apply_corruption(bytes: &mut [u8], kv: &[(String, String)], name: &str) {
    let Some(op) = get(kv, "corrupt") else {
        return;
    };
    let off =
        num(get(kv, "offset").unwrap_or_else(|| panic!("{name}: corrupt without offset"))) as usize;
    let (verb, val) = op
        .split_once(' ')
        .unwrap_or_else(|| panic!("{name}: corrupt wants `xor V` or `set V`, got {op:?}"));
    let v = num(val) as u8;
    match verb {
        "xor" => bytes[off] ^= v,
        "set" => bytes[off] = v,
        other => panic!("{name}: unknown corruption {other:?}"),
    }
}

/// Assert a `Result`'s error matches the expected variant name (matched
/// as a prefix of the `Debug` rendering, so payloads need not be spelled
/// out in fixtures).
fn expect_error<T, E: std::fmt::Debug>(res: Result<T, E>, variant: &str, name: &str) {
    match res {
        Ok(_) => panic!("{name}: expected {variant}, parse succeeded"),
        Err(e) => {
            let dbg = format!("{e:?}");
            assert!(
                dbg.starts_with(variant),
                "{name}: expected {variant}, got {dbg}"
            );
        }
    }
}

fn regen_golden() -> bool {
    std::env::var("ULE_REGEN_GOLDEN").is_ok()
}

/// Rewrite the golden `key:` line of a fixture in place (the
/// `ULE_REGEN_GOLDEN=1` convention shared with the report goldens).
fn rewrite_golden_line(path: &Path, key: &str, value: &str) {
    let text = fs::read_to_string(path).expect("read fixture");
    let prefix = format!("{key}:");
    let mut replaced = false;
    let out: String = text
        .lines()
        .map(|l| {
            if l.trim_start().starts_with(&prefix) && !replaced {
                replaced = true;
                format!("{key}: {value}\n")
            } else {
                format!("{l}\n")
            }
        })
        .collect();
    assert!(
        replaced,
        "{}: no `{key}:` line to regenerate",
        path.display()
    );
    fs::write(path, out).expect("rewrite fixture");
}

// -------------------------------------------------------------- dynarisc

const DYNARISC_MNEMONICS: [&str; 23] = [
    "ADD", "ADC", "SUB", "SBB", "CMP", "MUL", "AND", "OR", "XOR", "LSL", "LSR", "ASR", "ROR",
    "MOVE", "LDI", "LDM", "STM", "JUMP", "JZ", "JNZ", "JC", "CALL", "RET",
];

const DYNARISC_MEM: usize = 4096;
const DYNARISC_FUEL: u64 = 100_000;

fn check_dynarisc_expect(vm: &Vm, expect: &str, name: &str) {
    let (lhs, rhs) = expect
        .split_once('=')
        .unwrap_or_else(|| panic!("{name}: expect wants lhs=rhs, got {expect:?}"));
    let (lhs, rhs) = (lhs.trim(), rhs.trim());
    let got: u64 = if let Some(r) = lhs.strip_prefix('r') {
        vm.regs[r.parse::<usize>().unwrap()] as u64
    } else if let Some(d) = lhs.strip_prefix('d') {
        vm.ptrs[d.parse::<usize>().unwrap()] as u64
    } else if let Some(addr) = lhs.strip_prefix("mem[").and_then(|s| s.strip_suffix(']')) {
        vm.mem[num(addr) as usize] as u64
    } else {
        match lhs {
            "c" => vm.flags.c as u64,
            "z" => vm.flags.z as u64,
            "n" => vm.flags.n as u64,
            other => panic!("{name}: unknown expect lhs {other:?}"),
        }
    };
    assert_eq!(got, num(rhs), "{name}: expect {expect:?}");
}

#[test]
fn dynarisc_instruction_fixtures() {
    let mut covered = std::collections::BTreeSet::new();
    for path in corpus_files("dynarisc") {
        let name = format!("dynarisc/{}", stem(&path));
        let text = fs::read_to_string(&path).expect("read fixture");
        let (kv, _) = parse_fixture(&text);

        // 1. The canonical instruction line assembles to the golden words.
        let asm_line = get(&kv, "asm").unwrap_or_else(|| panic!("{name}: missing asm:"));
        let words = assemble(asm_line).unwrap_or_else(|e| panic!("{name}: asm: {e}"));
        assert!(!words.is_empty(), "{name}: asm produced no words");
        let rendered: Vec<String> = words.iter().map(|w| format!("{w:04x}")).collect();
        let rendered = rendered.join(" ");
        let golden = get(&kv, "words").unwrap_or_else(|| panic!("{name}: missing words:"));
        if regen_golden() {
            rewrite_golden_line(&path, "words", &rendered);
        } else {
            assert_eq!(
                rendered, golden,
                "{name}: encoding drift (rerun with ULE_REGEN_GOLDEN=1 if intended)"
            );
        }
        let mnemonic = asm_line
            .split_whitespace()
            .next()
            .unwrap()
            .split('.')
            .next()
            .unwrap()
            .to_ascii_uppercase();
        covered.insert(mnemonic);

        // 2. The program executes the instruction on BOTH DynaRisc
        //    engines — the reference interpreter and the threaded-code
        //    compiler — which must agree bit-for-bit (registers, pointers,
        //    flags, memory, pc, fuel) before any fixture expectation is
        //    consulted; the same three-engine discipline the VeRisc
        //    fixtures enforce below.
        let program = get_all(&kv, "program").join("\n");
        assert!(!program.is_empty(), "{name}: missing program:");
        let prog = assemble(&program).unwrap_or_else(|e| panic!("{name}: program: {e}"));
        let mut vm = Vm::new(prog.clone(), vec![0u8; DYNARISC_MEM]);
        let res = vm.run(DYNARISC_FUEL);
        let image = ThreadedImage::compile(&prog);
        let mut tvm = image.instantiate(vec![0u8; DYNARISC_MEM]);
        let tres = tvm.run(DYNARISC_FUEL);
        assert_eq!(tres, res, "{name}: threaded engine diverges on result");
        assert_eq!(
            tvm.state(),
            vm.state(),
            "{name}: threaded engine diverges on post-state"
        );
        res.unwrap_or_else(|e| panic!("{name}: vm: {e}"));
        assert!(vm.halted(), "{name}: program did not halt");
        let expects = get_all(&kv, "expect");
        assert!(!expects.is_empty(), "{name}: missing expect:");
        for expect in expects {
            check_dynarisc_expect(&vm, expect, &name);
        }
    }
    for m in DYNARISC_MNEMONICS {
        assert!(covered.contains(m), "no conformance fixture covers {m}");
    }
}

// ---------------------------------------------------------------- verisc

#[test]
fn verisc_instruction_fixtures() {
    let mut covered = std::collections::BTreeSet::new();
    for path in corpus_files("verisc") {
        let name = format!("verisc/{}", stem(&path));
        let text = fs::read_to_string(&path).expect("read fixture");
        let (kv, _) = parse_fixture(&text);
        let mem: Vec<u32> = get(&kv, "mem")
            .unwrap_or_else(|| panic!("{name}: missing mem:"))
            .split_whitespace()
            .map(|w| num(w) as u32)
            .collect();
        let fuel = num(get(&kv, "fuel").unwrap_or("1000"));
        if let Some(ops) = get(&kv, "covers") {
            for op in ops.split_whitespace() {
                covered.insert(op.to_string());
            }
        }

        // Run all three implementations; they must agree bit-for-bit
        // before any fixture expectation is consulted.
        let mut runs = Vec::new();
        for kind in EngineKind::ALL {
            let mut e = Engine::new(kind, mem.clone());
            let res = e.run(fuel);
            runs.push((kind, res, e));
        }
        let (_, first_res, first) = &runs[0];
        for (kind, res, e) in &runs[1..] {
            assert_eq!(res, first_res, "{name}: {} diverges on result", kind.name());
            assert_eq!(e.acc, first.acc, "{name}: {} diverges on acc", kind.name());
            assert_eq!(
                e.halted(),
                first.halted(),
                "{name}: {} diverges on halt",
                kind.name()
            );
            assert_eq!(
                e.mem,
                first.mem,
                "{name}: {} diverges on memory",
                kind.name()
            );
        }

        for expect in get_all(&kv, "expect") {
            let (lhs, rhs) = expect
                .split_once('=')
                .unwrap_or_else(|| panic!("{name}: expect wants lhs=rhs, got {expect:?}"));
            let (lhs, rhs) = (lhs.trim(), rhs.trim());
            match lhs {
                "acc" => assert_eq!(first.acc as u64, num(rhs), "{name}: {expect}"),
                "halted" => assert_eq!(first.halted(), rhs == "true", "{name}: {expect}"),
                "steps" => assert_eq!(first.steps(), num(rhs), "{name}: {expect}"),
                "error" => match first_res {
                    Ok(_) => panic!("{name}: expected error {rhs}, run succeeded"),
                    Err(e) => {
                        let dbg = format!("{e:?}");
                        assert!(dbg.starts_with(rhs), "{name}: expected {rhs}, got {dbg}");
                    }
                },
                _ => {
                    let addr = lhs
                        .strip_prefix("mem[")
                        .and_then(|s| s.strip_suffix(']'))
                        .unwrap_or_else(|| panic!("{name}: unknown expect lhs {lhs:?}"));
                    assert_eq!(
                        first.mem[num(addr) as usize] as u64,
                        num(rhs),
                        "{name}: {expect}"
                    );
                }
            }
        }
    }
    for op in ["LD", "ST", "SBB", "AND"] {
        assert!(covered.contains(op), "no conformance fixture covers {op}");
    }
}

// ------------------------------------------------------------------ ulea

fn scheme_by_name(s: &str) -> Scheme {
    match s {
        "store" => Scheme::Store,
        "rle" => Scheme::Rle,
        "lzss" => Scheme::Lzss,
        "lza" => Scheme::Lza,
        "columnar" => Scheme::ColumnarSql,
        other => panic!("unknown scheme {other:?}"),
    }
}

#[test]
fn ulea_container_field_fixtures() {
    for path in corpus_files("ulea") {
        let name = format!("ulea/{}", stem(&path));
        let text = fs::read_to_string(&path).expect("read fixture");
        let (kv, _) = parse_fixture(&text);
        let scheme = scheme_by_name(get(&kv, "scheme").unwrap_or("store"));
        let payload = get(&kv, "payload")
            .unwrap_or("the quick brown fox jumps over the lazy dog")
            .as_bytes()
            .to_vec();
        let mut archive = compress(scheme, &payload);
        if let Some(n) = get(&kv, "truncate") {
            archive.truncate(num(n) as usize);
        }
        apply_corruption(&mut archive, &kv, &name);
        let expect = get(&kv, "expect").unwrap_or_else(|| panic!("{name}: missing expect:"));
        let res = decompress(&archive);
        if expect == "Ok" {
            let back = res.unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(back, payload, "{name}: roundtrip drift");
        } else {
            expect_error(res, expect, &name);
        }
    }
}

// ---------------------------------------------------------------- emblem

fn kind_by_name(s: &str) -> EmblemKind {
    match s {
        "data" => EmblemKind::Data,
        "system" => EmblemKind::System,
        "parity" => EmblemKind::Parity,
        "index" => EmblemKind::Index,
        "reel-parity" => EmblemKind::ReelParity,
        other => panic!("unknown emblem kind {other:?}"),
    }
}

#[test]
fn emblem_header_field_fixtures() {
    for path in corpus_files("emblem") {
        let name = format!("emblem/{}", stem(&path));
        let text = fs::read_to_string(&path).expect("read fixture");
        let (kv, _) = parse_fixture(&text);
        let header = EmblemHeader::new(
            kind_by_name(get(&kv, "kind").unwrap_or("data")),
            num(get(&kv, "index").unwrap_or("0")) as u16,
            num(get(&kv, "group").unwrap_or("0")) as u16,
            num(get(&kv, "payload-len").unwrap_or("0")) as u32,
            num(get(&kv, "total-len").unwrap_or("0")) as u32,
        );
        let mut bytes = header.to_bytes().to_vec();

        // Golden wire encoding (only the all-fields fixture carries one).
        if let Some(golden) = get(&kv, "bytes") {
            let rendered: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
            if regen_golden() {
                rewrite_golden_line(&path, "bytes", &rendered);
            } else {
                assert_eq!(
                    rendered, golden,
                    "{name}: wire drift (rerun with ULE_REGEN_GOLDEN=1 if intended)"
                );
            }
        }

        apply_corruption(&mut bytes, &kv, &name);
        if get(&kv, "restamp") == Some("true") {
            let crc = crc16_ccitt(&bytes[..14]);
            bytes[14..16].copy_from_slice(&crc.to_le_bytes());
        }
        if let Some(n) = get(&kv, "truncate") {
            bytes.truncate(num(n) as usize);
        } else {
            assert_eq!(bytes.len(), HEADER_BYTES);
        }

        let expect = get(&kv, "expect").unwrap_or_else(|| panic!("{name}: missing expect:"));
        let res: Result<EmblemHeader, HeaderError> = EmblemHeader::from_bytes(&bytes);
        if expect == "Ok" {
            let h = res.unwrap_or_else(|e| panic!("{name}: {e}"));
            for (k, field) in [
                ("expect-index", h.index as u64),
                ("expect-group", h.group as u64),
                ("expect-payload-len", h.payload_len as u64),
                ("expect-total-len", h.total_len as u64),
            ] {
                if let Some(v) = get(&kv, k) {
                    assert_eq!(field, num(v), "{name}: {k}");
                }
            }
            if let Some(k) = get(&kv, "expect-kind") {
                assert_eq!(h.kind, kind_by_name(k), "{name}: expect-kind");
            }
        } else {
            expect_error(res, expect, &name);
        }
    }
}

// --------------------------------------------------------------- catalog

/// Byte offset of the first line starting with `marker` (mirrors the
/// parser's own raw-byte scan).
fn line_start(bytes: &[u8], marker: &[u8]) -> Option<usize> {
    if bytes.starts_with(marker) {
        return Some(0);
    }
    bytes
        .windows(marker.len() + 1)
        .position(|w| w[0] == b'\n' && &w[1..] == marker)
        .map(|p| p + 1)
}

#[test]
fn catalog_index_field_fixtures() {
    for path in corpus_files("catalog") {
        let name = format!("catalog/{}", stem(&path));
        let text = fs::read_to_string(&path).expect("read fixture");
        let (kv, body) = parse_fixture(&text);
        let body = body.unwrap_or_else(|| panic!("{name}: missing --- body"));

        // `{crc}` stands for the correct trailing CRC-32 of everything
        // before the `end:` line, so fixtures stay hand-editable.
        let body = if body.contains("{crc}") {
            let end = line_start(body.as_bytes(), b"end: crc32=")
                .unwrap_or_else(|| panic!("{name}: {{crc}} without an end: line"));
            let crc = crc32(&body.as_bytes()[..end]);
            body.replace("{crc}", &format!("{crc:08x}"))
        } else {
            body
        };

        let expect = get(&kv, "expect").unwrap_or_else(|| panic!("{name}: missing expect:"));
        let res = ContentIndex::parse(body.as_bytes());
        if expect == "Ok" {
            let idx = res.unwrap_or_else(|e| panic!("{name}: {e}"));
            if let Some(v) = get(&kv, "expect-chunk") {
                assert_eq!(idx.chunk_cap as u64, num(v), "{name}: expect-chunk");
            }
            if let Some(v) = get(&kv, "expect-segments") {
                assert_eq!(idx.entries.len() as u64, num(v), "{name}: expect-segments");
            }
            for table in get_all(&kv, "expect-table") {
                assert!(idx.find(table).is_some(), "{name}: table {table} missing");
            }
        } else {
            expect_error(res, expect, &name);
        }
    }
}
