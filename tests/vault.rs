//! Vault degradation matrix (S16, `DESIGN.md` §11): the content index,
//! selective restore, and cross-reel parity exercised under damage.
//!
//! The contract mirrors `tests/frame_loss.rs` one layer up:
//!
//! * index stream damaged beyond its RS budget → selective restore falls
//!   back to the full scan and still returns byte-identical tables;
//! * one content reel missing per parity group → cross-reel
//!   reconstruction succeeds, full and selective restores bit-exact;
//! * two reels missing in one group → the structured
//!   [`VaultError::ReelLoss`] naming the group and reels — never a
//!   panic, never silent garbage.
//!
//! The worker pool is taken from `ULE_TEST_THREADS`, so the CI matrix
//! (`e10-smoke`) runs this file serial and 4-threaded.

use ule::fault::{FaultPlan, FrameBlankFault};
use ule::olonys::MicrOlonys;
use ule::par::ThreadConfig;
use ule::vault::layout::StreamId;
use ule::vault::{ReelScans, RestorePath, ShardPlan, Vault, VaultError};

fn threads() -> ThreadConfig {
    ThreadConfig::from_env_or(ThreadConfig::Serial)
}

fn vault() -> Vault {
    Vault::sharded(
        MicrOlonys::test_tiny().with_threads(threads()),
        ShardPlan::single_parity(12, 2),
    )
}

/// The E15 gated topology: `RS(5, 3)` groups — any two lost reels per
/// group reconstruct, a third is structured failure.
fn vault_m2() -> Vault {
    Vault::sharded(
        MicrOlonys::test_tiny().with_threads(threads()),
        ShardPlan::with_parity(12, 3, 2),
    )
}

/// A dump big enough for several reels on the tiny medium.
fn dump() -> Vec<u8> {
    ule::tpch::dump_for_scale(0.0001, 77)
}

#[test]
fn damaged_index_falls_back_to_full_restore_byte_identical() {
    let v = vault();
    let dump = dump();
    let arc = v.archive(&dump);
    let mut scans = v.scan_reels(&arc, 21);

    // Blank every index frame: the index stream (and its outer parity)
    // is gone beyond any RS budget. The data frames are untouched.
    let layout = arc.layout;
    let idx_start = layout.sys_frames();
    let blank = FaultPlan::single(FrameBlankFault);
    for q in 0..layout.index_frames() {
        let (reel, off) = layout.reel_of(idx_start + q);
        let frames = scans[reel].as_mut().unwrap();
        frames[off] = blank.apply(&frames[off..off + 1], 1.0, 99)[0].clone();
    }

    let entry = arc.index.find("orders").unwrap();
    let (bytes, stats) = v.restore_table(&arc.bootstrap, &scans, "orders").unwrap();
    assert!(stats.index_fallback, "index damage must be detected");
    assert_eq!(stats.path, RestorePath::Full);
    let start = entry.dump_start as usize;
    assert_eq!(bytes, &dump[start..start + entry.dump_len as usize]);
}

#[test]
fn bad_index_crc_in_manifest_falls_back_byte_identical() {
    // The manifest's trailing CRC disagrees with a perfectly readable
    // index stream: trust neither, fall back to the full scan, and still
    // return the exact bytes.
    let v = vault();
    let dump = dump();
    let arc = v.archive(&dump);
    let scans = v.scan_reels(&arc, 31);
    let mut bootstrap = arc.bootstrap.clone();
    bootstrap.vault.as_mut().unwrap().index_crc32 ^= 0x1;

    let entry = arc.index.find("orders").unwrap();
    let (bytes, stats) = v.restore_table(&bootstrap, &scans, "orders").unwrap();
    assert!(stats.index_fallback, "CRC mismatch must be detected");
    assert_eq!(stats.path, RestorePath::Full);
    let start = entry.dump_start as usize;
    assert_eq!(bytes, &dump[start..start + entry.dump_len as usize]);
}

#[test]
fn truncated_index_reel_is_a_structured_shape_error() {
    // A shelf whose final reel lost its tail frames (torn tape, partial
    // scan) disagrees with the manifest's frame counts: selective restore
    // must report the shape mismatch, not index out of bounds.
    let v = vault();
    let dump = dump();
    let arc = v.archive(&dump);
    let mut scans = v.scan_reels(&arc, 32);
    let frames = scans[0].as_mut().unwrap();
    assert!(frames.len() >= 2, "reel 0 too small to truncate");
    frames.truncate(frames.len() - 1);

    match v.restore_table(&arc.bootstrap, &scans, "orders") {
        Err(VaultError::ShapeMismatch(msg)) => {
            assert!(msg.contains("frames"), "unhelpful message: {msg}");
        }
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }
}

#[test]
fn record_length_field_past_the_stream_is_a_structured_error() {
    use ule::vault::split_records;

    // Length prefix promising more bytes than the stream holds.
    let mut stream = 100u32.to_le_bytes().to_vec();
    stream.extend_from_slice(&[0u8; 10]);
    match split_records(&stream) {
        Err(VaultError::ShapeMismatch(msg)) => {
            assert!(msg.contains("promises"), "unhelpful message: {msg}");
        }
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }

    // u32::MAX prefix: the offset arithmetic must not overflow.
    match split_records(&u32::MAX.to_le_bytes()) {
        Err(VaultError::ShapeMismatch(_)) => {}
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }

    // A dangling sub-prefix tail after a valid record.
    let mut stream = 2u32.to_le_bytes().to_vec();
    stream.extend_from_slice(&[7, 7, 1, 2]);
    match split_records(&stream) {
        Err(VaultError::ShapeMismatch(msg)) => {
            assert!(msg.contains("dangling"), "unhelpful message: {msg}");
        }
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }

    // And the happy path splits cleanly.
    let mut stream = 3u32.to_le_bytes().to_vec();
    stream.extend_from_slice(&[9, 9, 9]);
    stream.extend_from_slice(&0u32.to_le_bytes());
    let records = split_records(&stream).unwrap();
    assert_eq!(records, vec![&[9u8, 9, 9][..], &[][..]]);
}

#[test]
fn one_reel_lost_per_group_reconstructs_bit_exact() {
    let v = vault();
    let dump = dump();
    let arc = v.archive(&dump);
    let pristine = v.scan_reels(&arc, 22);
    let layout = arc.layout;
    assert!(
        layout.content_reels() >= 3,
        "want a multi-reel shelf, got {}",
        layout.content_reels()
    );

    // Lose one content reel out of every parity group.
    for lost in 0..layout.content_reels() {
        let mut scans: ReelScans = pristine.clone();
        scans[lost] = None;
        let (restored, stats) = v
            .restore_all(&arc.bootstrap, &scans)
            .unwrap_or_else(|e| panic!("reel {lost} lost: {e}"));
        assert_eq!(restored, dump, "reel {lost} lost");
        assert_eq!(stats.reels_reconstructed, 1);
        assert!(stats.frames_reconstructed > 0);
    }

    // Selective restore across a lost reel: still byte-identical and
    // still cheaper than reconstructing everything.
    let mut scans: ReelScans = pristine.clone();
    scans[layout.content_reels() - 1] = None;
    let entry = arc.index.find("lineitem").unwrap();
    let (bytes, stats) = v.restore_table(&arc.bootstrap, &scans, "lineitem").unwrap();
    assert_eq!(stats.path, RestorePath::Selective);
    let start = entry.dump_start as usize;
    assert_eq!(bytes, &dump[start..start + entry.dump_len as usize]);
}

#[test]
fn lost_reel_plus_blanked_sibling_frame_degrades_to_the_outer_code() {
    // The double fault: a whole reel gone AND one unreadable frame on a
    // surviving sibling of the same parity group. Cross-reel recovery is
    // per-offset, so the damaged sibling costs exactly one offset of the
    // rebuilt reel (returned blank) — and the stream-level outer code
    // absorbs both failed frames. The shelf must restore bit-exact, not
    // brick.
    let v = vault();
    let dump = dump();
    let arc = v.archive(&dump);
    let mut scans = v.scan_reels(&arc, 27);
    let layout = arc.layout;
    assert!(layout.content_reels() >= 4, "want two full parity groups");

    // The first group always holds two content reels (guard above);
    // the last one holds only one when the reel count is odd.
    let lost = 1;
    let sibling = 0; // same group (group_reels == 2)
    assert_eq!(layout.group_of(lost), layout.group_of(sibling));
    let blank = FaultPlan::single(FrameBlankFault);
    let frames = scans[sibling].as_mut().unwrap();
    frames[0] = blank.apply(&frames[0..1], 1.0, 7)[0].clone();
    scans[lost] = None;

    let (restored, stats) = v.restore_all(&arc.bootstrap, &scans).unwrap();
    assert_eq!(restored, dump);
    assert_eq!(stats.reels_reconstructed, 1);
    // Every offset but the damaged one was rebuilt from parity.
    assert_eq!(stats.frames_reconstructed, layout.reel_frames(lost) - 1);
    assert!(stats.recovery_frames_decoded > 0);
}

#[test]
fn lost_parity_reel_alone_is_harmless() {
    let v = vault();
    let dump = dump();
    let arc = v.archive(&dump);
    let mut scans = v.scan_reels(&arc, 23);
    for g in 0..arc.layout.groups() {
        for r in arc.layout.parity_reels_of(g) {
            scans[r] = None;
        }
    }
    let (restored, stats) = v.restore_all(&arc.bootstrap, &scans).unwrap();
    assert_eq!(restored, dump);
    assert_eq!(stats.reels_reconstructed, 0);
}

#[test]
fn two_reels_lost_in_one_group_is_a_clean_structured_error() {
    let v = vault();
    let dump = dump();
    let arc = v.archive(&dump);
    let layout = arc.layout;
    assert!(layout.group_reels == 2 && layout.content_reels() >= 2);

    // Both members of group 0 gone: parity covers only one.
    let mut scans = v.scan_reels(&arc, 24);
    scans[0] = None;
    scans[1] = None;
    match v.restore_all(&arc.bootstrap, &scans) {
        Err(VaultError::ReelLoss {
            group,
            lost,
            recoverable,
        }) => {
            assert_eq!(group, 0);
            assert_eq!(lost, vec![0, 1]);
            assert_eq!(recoverable, 1);
        }
        other => panic!("expected ReelLoss, got {other:?}"),
    }

    // A content reel plus its own parity reel is just as fatal — and just
    // as clean.
    let mut scans = v.scan_reels(&arc, 25);
    scans[0] = None;
    let parity_reel = layout.parity_reel_of(0, 0);
    scans[parity_reel] = None;
    match v.restore_table(&arc.bootstrap, &scans, "orders") {
        Err(VaultError::ReelLoss { group, lost, .. }) => {
            assert_eq!(group, 0);
            assert!(lost.contains(&parity_reel));
        }
        other => panic!("expected ReelLoss, got {other:?}"),
    }
}

#[test]
fn multi_parity_survives_any_two_losses_per_group() {
    let v = vault_m2();
    let dump = dump();
    let arc = v.archive(&dump);
    let layout = arc.layout;
    assert_eq!(layout.group_parity, 2);
    assert!(layout.groups() >= 1);
    let pristine = v.scan_reels(&arc, 41);

    // Every pair of reels in group 0 (members and parity alike): the
    // RS(5, 3) group must solve both.
    let group0: Vec<usize> = layout
        .group_members(0)
        .chain(layout.parity_reels_of(0))
        .collect();
    for (ai, &a) in group0.iter().enumerate() {
        for &b in &group0[ai + 1..] {
            let mut scans = pristine.clone();
            scans[a] = None;
            scans[b] = None;
            let (restored, stats) = v
                .restore_all(&arc.bootstrap, &scans)
                .unwrap_or_else(|e| panic!("reels {a},{b} lost: {e}"));
            assert_eq!(restored, dump, "reels {a},{b} lost");
            // Only lost *content* reels are rebuilt on restore; lost
            // parity reels cost nothing here.
            let content_lost =
                usize::from(a < layout.content_reels()) + usize::from(b < layout.content_reels());
            assert_eq!(stats.reels_reconstructed, content_lost, "reels {a},{b}");
        }
    }

    // The bootstrap survives its own wire format with the parity depth
    // intact, and the reparsed document restores identically.
    let reparsed = ule::olonys::Bootstrap::parse(&arc.bootstrap.to_text()).unwrap();
    assert_eq!(reparsed.vault.as_ref().unwrap().parity_reels, 2);
    let mut scans = pristine.clone();
    scans[0] = None;
    scans[1] = None;
    let (restored, _) = v.restore_all(&reparsed, &scans).unwrap();
    assert_eq!(restored, dump);
}

#[test]
fn m_plus_one_losses_name_every_lost_reel_and_group() {
    let v = vault_m2();
    let dump = dump();
    let arc = v.archive(&dump);
    let layout = arc.layout;
    let mut scans = v.scan_reels(&arc, 42);
    let gone = vec![0, 1, layout.parity_reel_of(0, 1)];
    for &r in &gone {
        scans[r] = None;
    }
    match v.restore_all(&arc.bootstrap, &scans) {
        Err(VaultError::ReelLoss {
            group,
            lost,
            recoverable,
        }) => {
            assert_eq!(group, 0);
            assert_eq!(lost, gone, "every lost reel named");
            assert_eq!(recoverable, 2);
        }
        other => panic!("expected ReelLoss, got {other:?}"),
    }
}

#[test]
fn damaged_frame_in_selective_range_is_rebuilt_not_full_scanned() {
    // Degraded-mode read: a frame inside the requested table's range no
    // longer decodes. The old behaviour was SelectiveFallback (full
    // scan); now the frame is rebuilt from its parity group's surviving
    // columns and the read stays selective.
    let v = vault();
    let dump = dump();
    let arc = v.archive(&dump);
    let mut scans = v.scan_reels(&arc, 43);
    let layout = arc.layout;

    let entry = arc.index.find("orders").unwrap();
    let chunks: Vec<usize> = arc.index.chunk_range(entry).collect();
    let pos = layout.chunk_position(StreamId::Data, chunks[chunks.len() / 2]);
    let (reel, off) = layout.reel_of(pos);
    let blank = FaultPlan::single(FrameBlankFault);
    let frames = scans[reel].as_mut().unwrap();
    frames[off] = blank.apply(&frames[off..off + 1], 1.0, 17)[0].clone();

    let (bytes, stats) = v.restore_table(&arc.bootstrap, &scans, "orders").unwrap();
    assert_eq!(stats.path, RestorePath::Selective, "no full-scan fallback");
    assert_eq!(stats.frames_reconstructed, 1, "exactly the damaged frame");
    assert_eq!(stats.reels_reconstructed, 1);
    let start = entry.dump_start as usize;
    assert_eq!(bytes, &dump[start..start + entry.dump_len as usize]);
}

#[test]
fn degraded_selective_restore_rebuilds_only_needed_frames() {
    // A whole data reel gone: selective restore must rebuild only the
    // offsets the requested table touches, never the whole reel.
    let v = vault();
    let dump = dump();
    let arc = v.archive(&dump);
    let layout = arc.layout;
    let pristine = v.scan_reels(&arc, 44);
    let data_start = layout.sys_frames() + layout.index_frames();

    // Find a (table, reel) pair where the reel is pure data stream and
    // the table needs some but not all of its frames.
    let mut picked = None;
    'outer: for table in ["lineitem", "orders", "customer", "partsupp"] {
        let Some(entry) = arc.index.find(table) else {
            continue;
        };
        let positions: Vec<usize> = arc
            .index
            .chunk_range(entry)
            .map(|c| layout.chunk_position(StreamId::Data, c))
            .collect();
        for r in 0..layout.content_reels() {
            if r * layout.reel_capacity < data_start {
                continue; // holds sys/index frames: whole-reel territory
            }
            let needed = positions
                .iter()
                .filter(|&&p| layout.reel_of(p).0 == r)
                .count();
            if needed > 0 && needed < layout.reel_frames(r) {
                picked = Some((table, r, needed));
                break 'outer;
            }
        }
    }
    let (table, lost, needed) = picked.expect("some table partially covers a data reel");

    let mut scans = pristine.clone();
    scans[lost] = None;
    let entry = arc.index.find(table).unwrap();
    let (bytes, stats) = v.restore_table(&arc.bootstrap, &scans, table).unwrap();
    assert_eq!(stats.path, RestorePath::Selective);
    assert_eq!(
        stats.frames_reconstructed, needed,
        "{table}: exactly the frames the read touches"
    );
    assert!(stats.frames_reconstructed < layout.reel_frames(lost));
    assert_eq!(stats.reels_reconstructed, 1);
    let start = entry.dump_start as usize;
    assert_eq!(bytes, &dump[start..start + entry.dump_len as usize]);
}

#[test]
fn scrub_on_a_clean_shelf_is_a_noop_and_repair_idempotent() {
    let v = vault_m2();
    let arc = v.archive(&dump());
    let mut scans = v.scan_reels(&arc, 45);

    let report = v.scrub(&arc.bootstrap, &scans).unwrap();
    assert!(report.is_clean(), "{report:?}");
    let (clean, correctable, lost) = report.counts();
    assert_eq!(clean, arc.layout.total_reels());
    assert_eq!((correctable, lost), (0, 0));
    for g in &report.groups {
        assert!(g.recoverable);
        assert_eq!(g.parity_mismatch_offsets, 0);
    }

    let before = scans.clone();
    let repair = v.repair(&arc.bootstrap, &mut scans).unwrap();
    assert!(repair.is_noop(), "{repair:?}");
    assert_eq!(repair.frames_reencoded, 0);
    for (a, b) in before.iter().zip(&scans) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(
                x.as_bytes(),
                y.as_bytes(),
                "repair must not touch a clean shelf"
            );
        }
    }
}

#[test]
fn scrub_repair_scrub_converges_under_losses_and_damage() {
    let v = vault_m2();
    let dump = dump();
    let arc = v.archive(&dump);
    let layout = arc.layout;
    let mut scans = v.scan_reels(&arc, 46);

    // One reel of group 0 gone, one frame of a sibling blanked.
    scans[0] = None;
    let blank = FaultPlan::single(FrameBlankFault);
    let frames = scans[1].as_mut().unwrap();
    frames[3] = blank.apply(&frames[3..4], 1.0, 5)[0].clone();

    let report = v.scrub(&arc.bootstrap, &scans).unwrap();
    assert!(!report.is_clean());
    let (_, correctable, lost) = report.counts();
    assert_eq!(lost, 1, "the missing reel");
    assert_eq!(correctable, 1, "the blank-frame sibling");
    assert_eq!(report.reels[1].damaged, vec![3]);
    assert!(report.groups[0].recoverable);

    let repair = v.repair(&arc.bootstrap, &mut scans).unwrap();
    assert!(repair.unrepairable.is_empty(), "{repair:?}");
    assert!(repair.reels_rebuilt.contains(&0));
    assert!(repair.reels_rebuilt.contains(&1));
    assert_eq!(repair.frames_reencoded, layout.reel_frames(0) + 1);

    // Convergence: the repaired shelf scrubs clean, a second repair is a
    // no-op, and a restore needs no reconstruction at all.
    let again = v.scrub(&arc.bootstrap, &scans).unwrap();
    assert!(again.is_clean(), "{again:?}");
    assert!(v.repair(&arc.bootstrap, &mut scans).unwrap().is_noop());
    let (restored, stats) = v.restore_all(&arc.bootstrap, &scans).unwrap();
    assert_eq!(restored, dump);
    assert_eq!(stats.reels_reconstructed, 0);
}

#[test]
fn scrub_past_the_budget_reports_lost_and_repair_declines() {
    let v = vault_m2();
    let arc = v.archive(&dump());
    let layout = arc.layout;
    let mut scans = v.scan_reels(&arc, 47);
    let gone = vec![0, 1, 2];
    for &r in &gone {
        scans[r] = None;
    }

    let report = v.scrub(&arc.bootstrap, &scans).unwrap();
    assert!(!report.groups[0].recoverable);
    assert_eq!(report.groups[0].lost, gone);
    let before_len: Vec<usize> = scans
        .iter()
        .map(|r| r.as_ref().map_or(0, |f| f.len()))
        .collect();
    let repair = v.repair(&arc.bootstrap, &mut scans).unwrap();
    for &r in &gone {
        assert!(repair.unrepairable.contains(&r), "{repair:?}");
        assert!(scans[r].is_none(), "unrepairable reel left untouched");
    }
    let after_len: Vec<usize> = scans
        .iter()
        .map(|r| r.as_ref().map_or(0, |f| f.len()))
        .collect();
    assert_eq!(before_len, after_len);
    // Other groups (if any) are untouched and healthy.
    assert!(layout.groups() < 2 || report.groups[1].recoverable);
}

#[test]
fn selective_restore_scans_a_fraction_of_the_shelf() {
    // The E10 economics at test scale: one mid-size table must cost a
    // small fraction of the full-scan frame count (the report gates the
    // production number; this keeps the property in `cargo test`).
    let v = vault();
    let dump = dump();
    let arc = v.archive(&dump);
    let scans = v.scan_reels(&arc, 26);
    let (_, full) = v.restore_all(&arc.bootstrap, &scans).unwrap();
    let (_, sel) = v.restore_table(&arc.bootstrap, &scans, "orders").unwrap();
    assert!(
        sel.frames_decoded * 2 < full.frames_decoded,
        "selective {} vs full {} frames",
        sel.frames_decoded,
        full.frames_decoded
    );
}
