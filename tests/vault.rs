//! Vault degradation matrix (S16, `DESIGN.md` §11): the content index,
//! selective restore, and cross-reel parity exercised under damage.
//!
//! The contract mirrors `tests/frame_loss.rs` one layer up:
//!
//! * index stream damaged beyond its RS budget → selective restore falls
//!   back to the full scan and still returns byte-identical tables;
//! * one content reel missing per parity group → cross-reel
//!   reconstruction succeeds, full and selective restores bit-exact;
//! * two reels missing in one group → the structured
//!   [`VaultError::ReelLoss`] naming the group and reels — never a
//!   panic, never silent garbage.
//!
//! The worker pool is taken from `ULE_TEST_THREADS`, so the CI matrix
//! (`e10-smoke`) runs this file serial and 4-threaded.

use ule::fault::{FaultPlan, FrameBlankFault};
use ule::olonys::MicrOlonys;
use ule::par::ThreadConfig;
use ule::vault::{ReelScans, RestorePath, Vault, VaultError};

fn threads() -> ThreadConfig {
    ThreadConfig::from_env_or(ThreadConfig::Serial)
}

fn vault() -> Vault {
    Vault::sharded(MicrOlonys::test_tiny().with_threads(threads()), 12, 2)
}

/// A dump big enough for several reels on the tiny medium.
fn dump() -> Vec<u8> {
    ule::tpch::dump_for_scale(0.0001, 77)
}

#[test]
fn damaged_index_falls_back_to_full_restore_byte_identical() {
    let v = vault();
    let dump = dump();
    let arc = v.archive(&dump);
    let mut scans = v.scan_reels(&arc, 21);

    // Blank every index frame: the index stream (and its outer parity)
    // is gone beyond any RS budget. The data frames are untouched.
    let layout = arc.layout;
    let idx_start = layout.sys_frames();
    let blank = FaultPlan::single(FrameBlankFault);
    for q in 0..layout.index_frames() {
        let (reel, off) = layout.reel_of(idx_start + q);
        let frames = scans[reel].as_mut().unwrap();
        frames[off] = blank.apply(&frames[off..off + 1], 1.0, 99)[0].clone();
    }

    let entry = arc.index.find("orders").unwrap();
    let (bytes, stats) = v.restore_table(&arc.bootstrap, &scans, "orders").unwrap();
    assert!(stats.index_fallback, "index damage must be detected");
    assert_eq!(stats.path, RestorePath::Full);
    let start = entry.dump_start as usize;
    assert_eq!(bytes, &dump[start..start + entry.dump_len as usize]);
}

#[test]
fn bad_index_crc_in_manifest_falls_back_byte_identical() {
    // The manifest's trailing CRC disagrees with a perfectly readable
    // index stream: trust neither, fall back to the full scan, and still
    // return the exact bytes.
    let v = vault();
    let dump = dump();
    let arc = v.archive(&dump);
    let scans = v.scan_reels(&arc, 31);
    let mut bootstrap = arc.bootstrap.clone();
    bootstrap.vault.as_mut().unwrap().index_crc32 ^= 0x1;

    let entry = arc.index.find("orders").unwrap();
    let (bytes, stats) = v.restore_table(&bootstrap, &scans, "orders").unwrap();
    assert!(stats.index_fallback, "CRC mismatch must be detected");
    assert_eq!(stats.path, RestorePath::Full);
    let start = entry.dump_start as usize;
    assert_eq!(bytes, &dump[start..start + entry.dump_len as usize]);
}

#[test]
fn truncated_index_reel_is_a_structured_shape_error() {
    // A shelf whose final reel lost its tail frames (torn tape, partial
    // scan) disagrees with the manifest's frame counts: selective restore
    // must report the shape mismatch, not index out of bounds.
    let v = vault();
    let dump = dump();
    let arc = v.archive(&dump);
    let mut scans = v.scan_reels(&arc, 32);
    let frames = scans[0].as_mut().unwrap();
    assert!(frames.len() >= 2, "reel 0 too small to truncate");
    frames.truncate(frames.len() - 1);

    match v.restore_table(&arc.bootstrap, &scans, "orders") {
        Err(VaultError::ShapeMismatch(msg)) => {
            assert!(msg.contains("frames"), "unhelpful message: {msg}");
        }
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }
}

#[test]
fn record_length_field_past_the_stream_is_a_structured_error() {
    use ule::vault::split_records;

    // Length prefix promising more bytes than the stream holds.
    let mut stream = 100u32.to_le_bytes().to_vec();
    stream.extend_from_slice(&[0u8; 10]);
    match split_records(&stream) {
        Err(VaultError::ShapeMismatch(msg)) => {
            assert!(msg.contains("promises"), "unhelpful message: {msg}");
        }
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }

    // u32::MAX prefix: the offset arithmetic must not overflow.
    match split_records(&u32::MAX.to_le_bytes()) {
        Err(VaultError::ShapeMismatch(_)) => {}
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }

    // A dangling sub-prefix tail after a valid record.
    let mut stream = 2u32.to_le_bytes().to_vec();
    stream.extend_from_slice(&[7, 7, 1, 2]);
    match split_records(&stream) {
        Err(VaultError::ShapeMismatch(msg)) => {
            assert!(msg.contains("dangling"), "unhelpful message: {msg}");
        }
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }

    // And the happy path splits cleanly.
    let mut stream = 3u32.to_le_bytes().to_vec();
    stream.extend_from_slice(&[9, 9, 9]);
    stream.extend_from_slice(&0u32.to_le_bytes());
    let records = split_records(&stream).unwrap();
    assert_eq!(records, vec![&[9u8, 9, 9][..], &[][..]]);
}

#[test]
fn one_reel_lost_per_group_reconstructs_bit_exact() {
    let v = vault();
    let dump = dump();
    let arc = v.archive(&dump);
    let pristine = v.scan_reels(&arc, 22);
    let layout = arc.layout;
    assert!(
        layout.content_reels() >= 3,
        "want a multi-reel shelf, got {}",
        layout.content_reels()
    );

    // Lose one content reel out of every parity group.
    for lost in 0..layout.content_reels() {
        let mut scans: ReelScans = pristine.clone();
        scans[lost] = None;
        let (restored, stats) = v
            .restore_all(&arc.bootstrap, &scans)
            .unwrap_or_else(|e| panic!("reel {lost} lost: {e}"));
        assert_eq!(restored, dump, "reel {lost} lost");
        assert_eq!(stats.reels_reconstructed, 1);
        assert!(stats.frames_reconstructed > 0);
    }

    // Selective restore across a lost reel: still byte-identical and
    // still cheaper than reconstructing everything.
    let mut scans: ReelScans = pristine.clone();
    scans[layout.content_reels() - 1] = None;
    let entry = arc.index.find("lineitem").unwrap();
    let (bytes, stats) = v.restore_table(&arc.bootstrap, &scans, "lineitem").unwrap();
    assert_eq!(stats.path, RestorePath::Selective);
    let start = entry.dump_start as usize;
    assert_eq!(bytes, &dump[start..start + entry.dump_len as usize]);
}

#[test]
fn lost_reel_plus_blanked_sibling_frame_degrades_to_the_outer_code() {
    // The double fault: a whole reel gone AND one unreadable frame on a
    // surviving sibling of the same parity group. Cross-reel recovery is
    // per-offset, so the damaged sibling costs exactly one offset of the
    // rebuilt reel (returned blank) — and the stream-level outer code
    // absorbs both failed frames. The shelf must restore bit-exact, not
    // brick.
    let v = vault();
    let dump = dump();
    let arc = v.archive(&dump);
    let mut scans = v.scan_reels(&arc, 27);
    let layout = arc.layout;
    assert!(layout.content_reels() >= 4, "want two full parity groups");

    // The first group always holds two content reels (guard above);
    // the last one holds only one when the reel count is odd.
    let lost = 1;
    let sibling = 0; // same group (group_reels == 2)
    assert_eq!(layout.group_of(lost), layout.group_of(sibling));
    let blank = FaultPlan::single(FrameBlankFault);
    let frames = scans[sibling].as_mut().unwrap();
    frames[0] = blank.apply(&frames[0..1], 1.0, 7)[0].clone();
    scans[lost] = None;

    let (restored, stats) = v.restore_all(&arc.bootstrap, &scans).unwrap();
    assert_eq!(restored, dump);
    assert_eq!(stats.reels_reconstructed, 1);
    // Every offset but the damaged one was rebuilt from parity.
    assert_eq!(stats.frames_reconstructed, layout.reel_frames(lost) - 1);
    assert!(stats.recovery_frames_decoded > 0);
}

#[test]
fn lost_parity_reel_alone_is_harmless() {
    let v = vault();
    let dump = dump();
    let arc = v.archive(&dump);
    let mut scans = v.scan_reels(&arc, 23);
    for g in 0..arc.layout.parity_reels() {
        scans[arc.layout.parity_reel_of(g)] = None;
    }
    let (restored, stats) = v.restore_all(&arc.bootstrap, &scans).unwrap();
    assert_eq!(restored, dump);
    assert_eq!(stats.reels_reconstructed, 0);
}

#[test]
fn two_reels_lost_in_one_group_is_a_clean_structured_error() {
    let v = vault();
    let dump = dump();
    let arc = v.archive(&dump);
    let layout = arc.layout;
    assert!(layout.group_reels == 2 && layout.content_reels() >= 2);

    // Both members of group 0 gone: parity covers only one.
    let mut scans = v.scan_reels(&arc, 24);
    scans[0] = None;
    scans[1] = None;
    match v.restore_all(&arc.bootstrap, &scans) {
        Err(VaultError::ReelLoss {
            group,
            lost,
            recoverable,
        }) => {
            assert_eq!(group, 0);
            assert_eq!(lost, vec![0, 1]);
            assert_eq!(recoverable, 1);
        }
        other => panic!("expected ReelLoss, got {other:?}"),
    }

    // A content reel plus its own parity reel is just as fatal — and just
    // as clean.
    let mut scans = v.scan_reels(&arc, 25);
    scans[0] = None;
    let parity_reel = layout.parity_reel_of(0);
    scans[parity_reel] = None;
    match v.restore_table(&arc.bootstrap, &scans, "orders") {
        Err(VaultError::ReelLoss { group, lost, .. }) => {
            assert_eq!(group, 0);
            assert!(lost.contains(&parity_reel));
        }
        other => panic!("expected ReelLoss, got {other:?}"),
    }
}

#[test]
fn selective_restore_scans_a_fraction_of_the_shelf() {
    // The E10 economics at test scale: one mid-size table must cost a
    // small fraction of the full-scan frame count (the report gates the
    // production number; this keeps the property in `cargo test`).
    let v = vault();
    let dump = dump();
    let arc = v.archive(&dump);
    let scans = v.scan_reels(&arc, 26);
    let (_, full) = v.restore_all(&arc.bootstrap, &scans).unwrap();
    let (_, sel) = v.restore_table(&arc.bootstrap, &scans, "orders").unwrap();
    assert!(
        sel.frames_decoded * 2 < full.frames_decoded,
        "selective {} vs full {} frames",
        sel.frames_decoded,
        full.frames_decoded
    );
}
