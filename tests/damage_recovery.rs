//! Cross-crate damage experiments: the §3.1 protection claims exercised
//! through the full public API (gf256 → emblem → media).

use ule::emblem::{decode_emblem, decode_stream, encode_stream, EmblemGeometry, EmblemKind};
use ule::raster::{DegradeParams, Scanner};

fn payload(n: usize, seed: u8) -> Vec<u8> {
    (0..n)
        .map(|i| (i as u8).wrapping_mul(97).wrapping_add(seed))
        .collect()
}

#[test]
fn heavy_but_correctable_degradation() {
    let geom = EmblemGeometry::test_small();
    let data = payload(geom.payload_capacity(), 1);
    let images = encode_stream(&geom, EmblemKind::Data, &data, false);
    let params = DegradeParams {
        noise_sigma: 35.0,
        dust_per_mpx: 25.0,
        dust_max_radius: 2.5,
        fade_amplitude: 30.0,
        row_jitter: 0.8,
        lens_k: 0.002,
        scratches: 1,
        scratch_width: 1.0,
        ..Default::default()
    };
    let scans: Vec<_> = images
        .iter()
        .enumerate()
        .map(|(i, im)| Scanner::new(params.clone(), i as u64).scan(im))
        .collect();
    let (restored, stats) = decode_stream(&geom, &scans).expect("decode");
    assert_eq!(restored, data);
    assert!(stats.rs_corrected > 0);
}

#[test]
fn correction_capacity_boundary_bytes() {
    // Exactly t=16 corrupted bytes per inner block must decode; 17 must not.
    use ule::gf256::RsCode;
    let rs = RsCode::new(255, 223);
    let msg = payload(223, 9);
    let mut cw = rs.encode(&msg);
    for i in 0..16 {
        cw[i * 15] ^= 0xA5;
    }
    assert_eq!(rs.decode(&mut cw, &[]).unwrap(), 16);
    assert_eq!(&cw[..223], &msg[..]);

    let mut cw = rs.encode(&msg);
    for i in 0..17 {
        cw[i * 14] ^= 0xA5;
    }
    assert!(rs.decode(&mut cw, &[]).is_err());
}

#[test]
fn whole_group_loss_patterns() {
    // Any 3-subset pattern of losses in a 20-emblem group restores.
    let geom = EmblemGeometry::test_small();
    let data = payload(geom.payload_capacity() * 17, 4);
    let images = encode_stream(&geom, EmblemKind::Data, &data, true);
    assert_eq!(images.len(), 20);
    for lost in [[0usize, 1, 2], [17, 18, 19], [0, 9, 19], [5, 6, 18]] {
        let kept: Vec<_> = images
            .iter()
            .enumerate()
            .filter(|(i, _)| !lost.contains(i))
            .map(|(_, im)| im.clone())
            .collect();
        let (restored, _) =
            decode_stream(&geom, &kept).unwrap_or_else(|e| panic!("lost {lost:?}: {e}"));
        assert_eq!(restored, data, "lost {lost:?}");
    }
}

#[test]
fn single_emblem_headers_survive_damage_to_one_copy() {
    // Blank the first header row: copies 2/3 must carry it.
    use ule::emblem::geometry::{EDGE_CELLS, QUIET_CELLS};
    let geom = EmblemGeometry::test_small();
    let data = payload(300, 7);
    let images = encode_stream(&geom, EmblemKind::Data, &data, false);
    let mut img = images[0].clone();
    let cp = geom.cell_px;
    let origin = (QUIET_CELLS + EDGE_CELLS) * cp;
    for y in origin + cp..origin + 2 * cp {
        for x in origin..origin + geom.cols * cp {
            img.set(x, y, 255); // erase header copy 1 (row 1)
        }
    }
    let (h, p, stats) = decode_emblem(&geom, &img).expect("decode");
    assert_eq!(p, data);
    assert_eq!(h.payload_len as usize, data.len());
    assert!(
        stats.header_copy_used >= 1,
        "should have fallen back past copy 0"
    );
}
