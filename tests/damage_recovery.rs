//! Cross-crate damage experiments: the §3.1 protection claims exercised
//! through the full public API (gf256 → emblem → media).
//!
//! The damage matrix sweeps all three production `Medium` presets ×
//! {random byte errors, known erasures, mixed errors-and-erasures} up to
//! the paper's 7.2% intra-emblem boundary, asserting bit-exact recovery
//! below the boundary and a *clean* `RsError::TooManyErrors` /
//! `DecodeError::RsFailure` (never a panic, never silent garbage) above.

use ule::emblem::geometry::{RS_K, RS_N};
use ule::emblem::{
    decode_emblem, decode_stream, encode_stream, inner_decode_with, inner_encode_with,
    EmblemGeometry, EmblemKind, ThreadConfig,
};
use ule::gf256::RsError;
use ule::media::Medium;
use ule::raster::{DegradeParams, Scanner};

fn payload(n: usize, seed: u8) -> Vec<u8> {
    (0..n)
        .map(|i| (i as u8).wrapping_mul(97).wrapping_add(seed))
        .collect()
}

/// Deterministic "random" positions: k distinct indices in `0..n`.
fn positions(n: usize, k: usize, seed: u64) -> Vec<usize> {
    let mut state = seed | 1;
    let mut picked = Vec::with_capacity(k);
    while picked.len() < k {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let p = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) as usize % n;
        if !picked.contains(&p) {
            picked.push(p);
        }
    }
    picked
}

/// The three §4 production media (frozen formats the matrix protects).
fn production_media() -> Vec<Medium> {
    vec![
        Medium::paper_a4_600dpi(),
        Medium::microfilm_16mm(),
        Medium::cinema_35mm(),
    ]
}

/// How one codeword is damaged in the matrix.
#[derive(Clone, Copy, Debug)]
enum Damage {
    /// `e` byte errors at unknown positions (budget: e ≤ t = 16).
    Errors(usize),
    /// `r` byte erasures at known positions (budget: r ≤ 2t = 32).
    Erasures(usize),
    /// `e` unknown errors plus `r` known erasures (budget: 2e + r ≤ 32).
    Mixed(usize, usize),
}

impl Damage {
    fn within_budget(self) -> bool {
        match self {
            Damage::Errors(e) => e <= (RS_N - RS_K) / 2,
            Damage::Erasures(r) => r <= RS_N - RS_K,
            Damage::Mixed(e, r) => 2 * e + r <= RS_N - RS_K,
        }
    }

    /// Corrupt `cw` in place; returns the erasure list to hand the decoder.
    fn apply(self, cw: &mut [u8], seed: u64) -> Vec<usize> {
        match self {
            Damage::Errors(e) => {
                for (i, p) in positions(cw.len(), e, seed).into_iter().enumerate() {
                    cw[p] ^= 0x21 + (i as u8) * 3;
                }
                Vec::new()
            }
            Damage::Erasures(r) => {
                let pos = positions(cw.len(), r, seed.wrapping_add(1));
                for &p in &pos {
                    cw[p] = 0xEE;
                }
                pos
            }
            Damage::Mixed(e, r) => {
                let all = positions(cw.len(), e + r, seed.wrapping_add(2));
                for (i, &p) in all[..e].iter().enumerate() {
                    cw[p] ^= 0x40 | (i as u8) | 1;
                }
                for &p in &all[e..] {
                    cw[p] = 0;
                }
                all[e..].to_vec()
            }
        }
    }
}

#[test]
fn damage_matrix_across_media_and_damage_kinds() {
    // The §3.1 boundary, swept as fractions of user data per inner block:
    // 16/223 = 7.17% ≈ the paper's 7.2%. Every case below the budget must
    // restore bit-exact; every case above must fail *cleanly* with
    // RsError::TooManyErrors — a panic or silently wrong bytes would be a
    // protection regression.
    let cases = [
        // random byte errors: 1.8%, 3.6%, 5.4%, 7.17% of user data, then +1
        Damage::Errors(4),
        Damage::Errors(8),
        Damage::Errors(12),
        Damage::Errors(16),
        Damage::Errors(17),
        Damage::Errors(24),
        // known erasures: up to 2t = 32, then past it
        Damage::Erasures(8),
        Damage::Erasures(16),
        Damage::Erasures(32),
        Damage::Erasures(33),
        Damage::Erasures(48),
        // mixed: 2e + r against the 32-byte budget
        Damage::Mixed(4, 8),
        Damage::Mixed(10, 12),
        Damage::Mixed(16, 0),
        Damage::Mixed(12, 12),
        Damage::Mixed(16, 8),
    ];
    for (mi, medium) in production_media().into_iter().enumerate() {
        let geom = medium.geometry;
        let rs = geom.inner_code();
        let msg = payload(RS_K, 31 + mi as u8);
        let clean = rs.encode(&msg);
        for (ci, &case) in cases.iter().enumerate() {
            let seed = (mi as u64) << 16 | ci as u64;
            let mut cw = clean.clone();
            let erasures = case.apply(&mut cw, seed);
            let result = rs.decode(&mut cw, &erasures);
            if case.within_budget() {
                let fixed = result.unwrap_or_else(|e| {
                    panic!("{}: {case:?} within budget but failed: {e}", medium.name)
                });
                assert_eq!(&cw[..RS_K], &msg[..], "{}: {case:?}", medium.name);
                assert!(fixed <= RS_N - RS_K);
            } else {
                assert_eq!(
                    result.unwrap_err(),
                    RsError::TooManyErrors,
                    "{}: {case:?} beyond budget must fail cleanly",
                    medium.name
                );
            }
        }
    }
}

#[test]
fn whole_emblem_damage_boundary_per_medium() {
    // Same boundary exercised through the emblem layer: damage every inner
    // block of a full interleaved emblem stream and run the (threaded)
    // block decoder. The interleave means byte `i` of block `b` sits at
    // `i * nblocks + b`, so per-block damage lands at stride `nblocks`.
    let threads = ThreadConfig::from_env_or(ThreadConfig::Serial);
    for (mi, medium) in production_media().into_iter().enumerate() {
        let geom = medium.geometry;
        let nblocks = geom.rs_blocks();
        let data = payload(geom.payload_capacity(), 7 + mi as u8);
        let coded = inner_encode_with(&geom, &data, threads);

        // 16 errors in every block: the exact boundary, must recover.
        let mut damaged = coded.clone();
        for b in 0..nblocks {
            for (i, p) in positions(RS_N, 16, 77 + b as u64).into_iter().enumerate() {
                damaged[p * nblocks + b] ^= 0x5B + i as u8;
            }
        }
        let (restored, fixed) = inner_decode_with(&geom, &damaged, threads)
            .unwrap_or_else(|e| panic!("{}: boundary damage must decode: {e:?}", medium.name));
        assert_eq!(&restored[..data.len()], &data[..], "{}", medium.name);
        assert_eq!(fixed, 16 * nblocks, "{}", medium.name);

        // 17 errors in block 0: one past the boundary, must fail cleanly
        // naming the block (other blocks stay decodable).
        let mut damaged = coded.clone();
        for (i, p) in positions(RS_N, 17, 99).into_iter().enumerate() {
            damaged[p * nblocks] ^= 0x11 + i as u8;
        }
        match inner_decode_with(&geom, &damaged, threads) {
            Err(ule::emblem::DecodeError::RsFailure { block: 0 }) => {}
            other => panic!(
                "{}: expected RsFailure in block 0, got {other:?}",
                medium.name
            ),
        }
    }
}

#[test]
fn heavy_but_correctable_degradation() {
    let geom = EmblemGeometry::test_small();
    let data = payload(geom.payload_capacity(), 1);
    let images = encode_stream(&geom, EmblemKind::Data, &data, false);
    let params = DegradeParams {
        noise_sigma: 35.0,
        dust_per_mpx: 25.0,
        dust_max_radius: 2.5,
        fade_amplitude: 30.0,
        row_jitter: 0.8,
        lens_k: 0.002,
        scratches: 1,
        scratch_width: 1.0,
        ..Default::default()
    };
    let scans: Vec<_> = images
        .iter()
        .enumerate()
        .map(|(i, im)| Scanner::new(params.clone(), i as u64).scan(im))
        .collect();
    let (restored, stats) = decode_stream(&geom, &scans).expect("decode");
    assert_eq!(restored, data);
    assert!(stats.rs_corrected > 0);
}

#[test]
fn correction_capacity_boundary_bytes() {
    // Exactly t=16 corrupted bytes per inner block must decode; 17 must not.
    use ule::gf256::RsCode;
    let rs = RsCode::new(255, 223);
    let msg = payload(223, 9);
    let mut cw = rs.encode(&msg);
    for i in 0..16 {
        cw[i * 15] ^= 0xA5;
    }
    assert_eq!(rs.decode(&mut cw, &[]).unwrap(), 16);
    assert_eq!(&cw[..223], &msg[..]);

    let mut cw = rs.encode(&msg);
    for i in 0..17 {
        cw[i * 14] ^= 0xA5;
    }
    assert!(rs.decode(&mut cw, &[]).is_err());
}

#[test]
fn whole_group_loss_patterns() {
    // Any 3-subset pattern of losses in a 20-emblem group restores.
    let geom = EmblemGeometry::test_small();
    let data = payload(geom.payload_capacity() * 17, 4);
    let images = encode_stream(&geom, EmblemKind::Data, &data, true);
    assert_eq!(images.len(), 20);
    for lost in [[0usize, 1, 2], [17, 18, 19], [0, 9, 19], [5, 6, 18]] {
        let kept: Vec<_> = images
            .iter()
            .enumerate()
            .filter(|(i, _)| !lost.contains(i))
            .map(|(_, im)| im.clone())
            .collect();
        let (restored, _) =
            decode_stream(&geom, &kept).unwrap_or_else(|e| panic!("lost {lost:?}: {e}"));
        assert_eq!(restored, data, "lost {lost:?}");
    }
}

#[test]
fn single_emblem_headers_survive_damage_to_one_copy() {
    // Blank the first header row: copies 2/3 must carry it.
    use ule::emblem::geometry::{EDGE_CELLS, QUIET_CELLS};
    let geom = EmblemGeometry::test_small();
    let data = payload(300, 7);
    let images = encode_stream(&geom, EmblemKind::Data, &data, false);
    let mut img = images[0].clone();
    let cp = geom.cell_px;
    let origin = (QUIET_CELLS + EDGE_CELLS) * cp;
    for y in origin + cp..origin + 2 * cp {
        for x in origin..origin + geom.cols * cp {
            img.set(x, y, 255); // erase header copy 1 (row 1)
        }
    }
    let (h, p, stats) = decode_emblem(&geom, &img).expect("decode");
    assert_eq!(p, data);
    assert_eq!(h.payload_len as usize, data.len());
    assert!(
        stats.header_copy_used >= 1,
        "should have fallen back past copy 0"
    );
}
