//! Frame-loss and frame-reorder recovery: the §3.1 outer-code budget
//! exercised with *whole frames* removed or shuffled — the failure shapes
//! of lost pages and spliced reels — across both restoration paths.
//!
//! Below the redundancy budget restore must be bit-exact; above it the
//! failure must be the structured [`RestoreError::FrameLoss`] /
//! [`StreamError::FrameLoss`] naming the absent global emblem indices —
//! never a panic, never a hang, never silent garbage. The worker pool is
//! taken from `ULE_TEST_THREADS`, so the CI matrix runs this file serial
//! and 4-threaded.

use ule::emblem::{decode_stream_with, encode_stream_with, EmblemKind, StreamError};
use ule::fault::{FaultPlan, FrameLossFault, FrameReorderFault};
use ule::media::Medium;
use ule::olonys::{EmulationTier, MicrOlonys, RestoreError};
use ule::par::ThreadConfig;
use ule::raster::GrayImage;

fn threads() -> ThreadConfig {
    ThreadConfig::from_env_or(ThreadConfig::Serial)
}

/// A dump big enough for two outer-code groups on the tiny medium.
fn two_group_dump() -> Vec<u8> {
    ule::tpch::dump_for_scale(0.0001, 77)
}

fn drop_frames(frames: &[GrayImage], victims: &[usize]) -> Vec<GrayImage> {
    frames
        .iter()
        .enumerate()
        .filter(|(i, _)| !victims.contains(i))
        .map(|(_, f)| f.clone())
        .collect()
}

#[test]
fn loss_below_budget_restores_bit_exact_per_group() {
    let sys = MicrOlonys::test_tiny().with_threads(threads());
    let dump = two_group_dump();
    let out = sys.archive(&dump);
    let n = out.data_frames.len();
    assert!(n > 20, "want at least two groups, got {n} frames");
    let scans = sys.medium.scan_all_with(&out.data_frames, 41, threads());

    // Three whole frames gone from group 0 (the outer code's exact
    // budget), plus one from the tail group.
    for victims in [vec![0usize, 7, 19], vec![2, 10, 16], vec![n - 1, 3, 11]] {
        let kept = drop_frames(&scans, &victims);
        let (restored, stats) = sys
            .restore_native(&kept)
            .unwrap_or_else(|e| panic!("victims {victims:?}: {e}"));
        assert_eq!(restored, dump, "victims {victims:?}");
        // At least the lost *data* emblems were rebuilt (parity victims
        // don't need rebuilding).
        assert!(stats.emblems_recovered >= 1, "victims {victims:?}");
    }
}

#[test]
fn loss_above_budget_fails_with_named_frames() {
    let sys = MicrOlonys::test_tiny().with_threads(threads());
    let dump = two_group_dump();
    let out = sys.archive(&dump);
    let scans = sys.medium.scan_all_with(&out.data_frames, 42, threads());

    // Four frames from group 0: one past the any-3 budget.
    let victims = [1usize, 4, 9, 13];
    let kept = drop_frames(&scans, &victims);
    match sys.restore_native(&kept) {
        Err(RestoreError::FrameLoss {
            kind,
            expected,
            found,
            missing,
        }) => {
            assert_eq!(kind, EmblemKind::Data);
            assert_eq!(expected, 20, "group 0 holds 17 data + 3 parity");
            assert_eq!(found, 16);
            assert_eq!(missing, vec![1, 4, 9, 13]);
        }
        other => panic!("expected FrameLoss, got {other:?}"),
    }
}

#[test]
fn shuffled_scans_restore_bit_exact() {
    let sys = MicrOlonys::test_tiny().with_threads(threads());
    let dump = two_group_dump();
    let out = sys.archive(&dump);
    let scans = sys.medium.scan_all_with(&out.data_frames, 43, threads());

    // Full-severity reorder: every frame displaced (spliced-reel chaos).
    let shuffled = FaultPlan::single(FrameReorderFault).apply(&scans, 1.0, 99);
    assert_eq!(shuffled.len(), scans.len());
    assert_ne!(shuffled, scans, "shuffle must actually move frames");
    let (restored, _) = sys.restore_native(&shuffled).expect("reordered restore");
    assert_eq!(restored, dump);
}

#[test]
fn loss_and_reorder_combined_stay_within_budget() {
    let sys = MicrOlonys::test_tiny().with_threads(threads());
    let dump = two_group_dump();
    let out = sys.archive(&dump);
    let scans = sys.medium.scan_all_with(&out.data_frames, 44, threads());
    let n = scans.len();

    // The canonical frame-set models at a severity that keeps every
    // group under the any-3 budget: floor(0.08 * n) frames lost overall.
    let plan = FaultPlan::new()
        .with(FrameLossFault)
        .with(FrameReorderFault);
    let faulted = plan.apply(&scans, 0.08, 7);
    assert!(faulted.len() < n);
    let (restored, _) = sys.restore_native(&faulted).expect("combined faults");
    assert_eq!(restored, dump);
}

#[test]
fn production_geometry_stream_loss_matrix() {
    // The same budget at the stream layer on all three §4 production
    // geometries: 2 data + 3 parity emblems; any 3 lost is recoverable,
    // 4 lost must fail as a clean FrameLoss naming the victims.
    for medium in [
        Medium::paper_a4_600dpi(),
        Medium::microfilm_16mm(),
        Medium::cinema_35mm(),
    ] {
        let geom = medium.geometry;
        let payload: Vec<u8> = (0..geom.payload_capacity() + 500)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(5))
            .collect();
        let images = encode_stream_with(&geom, EmblemKind::Data, &payload, true, threads());
        assert_eq!(images.len(), 5, "{}", medium.name);

        let kept = drop_frames(&images, &[0, 2, 4]);
        let (restored, stats) = decode_stream_with(&geom, &kept, threads())
            .unwrap_or_else(|e| panic!("{}: 3 lost of 5 must restore: {e}", medium.name));
        assert_eq!(restored, payload, "{}", medium.name);
        // Victims 0/2/4 are one data and two parity emblems; only the
        // data emblem needs rebuilding.
        assert_eq!(stats.emblems_recovered, 1, "{}", medium.name);

        let kept = drop_frames(&images, &[0, 1, 2, 3]);
        match decode_stream_with(&geom, &kept, threads()) {
            Err(StreamError::FrameLoss {
                group,
                expected,
                found,
                missing,
            }) => {
                assert_eq!(group, 0, "{}", medium.name);
                assert_eq!(expected, 5, "{}", medium.name);
                assert_eq!(found, 1, "{}", medium.name);
                assert_eq!(missing, vec![0, 1, 2, 3], "{}", medium.name);
            }
            other => panic!("{}: expected FrameLoss, got {other:?}", medium.name),
        }
    }
}

#[test]
fn emulated_path_reports_lost_frames_and_survives_shuffles() {
    // The emulated path (no outer-code recovery) must name missing frames
    // instead of splicing a garbled stream — and must not care about scan
    // order at all.
    let sys = MicrOlonys {
        medium: Medium::test_micro(),
        scheme: ule::compress::Scheme::Lzss,
        with_parity: false,
        threads: ThreadConfig::Serial,
    };
    let dump = b"COPY t (a) FROM stdin;\n1\n2\n3\n4\n5\n\\.\n".to_vec();
    let out = sys.archive(&dump);
    let text = out.bootstrap.to_text();
    let n_sys = out.system_frames.len();
    assert!(n_sys >= 2, "want a multi-emblem system stream, got {n_sys}");

    // A seeded full shuffle of system + data together must restore.
    let mut scans = out.system_frames.clone();
    scans.extend(out.data_frames.iter().cloned());
    let shuffled = FaultPlan::single(FrameReorderFault).apply(&scans, 1.0, 3);
    let (restored, _) =
        MicrOlonys::restore_emulated(&text, &shuffled, EmulationTier::Threaded, threads())
            .expect("shuffled emulated restore");
    assert_eq!(restored, dump);

    // Losing the last system frame names it.
    let mut scans = drop_frames(&out.system_frames, &[n_sys - 1]);
    scans.extend(out.data_frames.iter().cloned());
    match MicrOlonys::restore_emulated(&text, &scans, EmulationTier::Threaded, threads()) {
        Err(RestoreError::FrameLoss {
            kind,
            expected,
            found,
            missing,
        }) => {
            assert_eq!(kind, EmblemKind::System);
            assert_eq!(expected, n_sys);
            assert_eq!(found, n_sys - 1);
            assert_eq!(missing, vec![n_sys - 1]);
        }
        other => panic!("expected system FrameLoss, got {other:?}"),
    }

    // Losing the only data frame names it too.
    let scans = out.system_frames.clone();
    match MicrOlonys::restore_emulated(&text, &scans, EmulationTier::Threaded, threads()) {
        Err(RestoreError::FrameLoss { kind, missing, .. }) => {
            assert_eq!(kind, EmblemKind::Data);
            assert_eq!(missing, vec![0]);
        }
        other => panic!("expected data FrameLoss, got {other:?}"),
    }
}

#[test]
fn emulated_path_ignores_parity_frames_in_the_pile() {
    // An archive written with the outer code on hands the restorer parity
    // emblems too; the sequential walkthrough must skip them (and the
    // Bootstrap's outer line must teach it the index layout).
    let sys = MicrOlonys {
        medium: Medium::test_micro(),
        scheme: ule::compress::Scheme::Lzss,
        with_parity: true,
        threads: ThreadConfig::Serial,
    };
    let dump = b"COPY t (a) FROM stdin;\n9\n8\n\\.\n".to_vec();
    let out = sys.archive(&dump);
    assert!(out.bootstrap.outer_parity);
    let text = out.bootstrap.to_text();
    let mut scans = out.system_frames.clone();
    scans.extend(out.data_frames.iter().cloned());
    scans.reverse();
    let (restored, _) =
        MicrOlonys::restore_emulated(&text, &scans, EmulationTier::Threaded, threads())
            .expect("parity-bearing emulated restore");
    assert_eq!(restored, dump);
}
