//! E5's testable core, spanning verisc ↔ core: any independent VeRisc
//! implementation, driven only by the Bootstrap document, restores the
//! archive identically.

use ule::compress::Scheme;
use ule::media::Medium;
use ule::olonys::{Bootstrap, EmulationTier, MicrOlonys};
use ule::verisc::vm::EngineKind;

fn micro() -> MicrOlonys {
    MicrOlonys {
        medium: Medium::test_micro(),
        scheme: Scheme::Lzss,
        with_parity: false,
        threads: ule::par::ThreadConfig::Serial,
    }
}

#[test]
fn bootstrap_document_is_self_contained() {
    let out = micro().archive(b"COPY t (a) FROM stdin;\n42\n\\.\n");
    let text = out.bootstrap.to_text();
    // The document must carry the whole stack: machine spec, letters,
    // manifest, walkthrough.
    for needle in [
        "VERISC EMULATOR ALGORITHM",
        "EMULATOR MEMORY IMAGE",
        "RESTORE MANIFEST",
        "RESTORATION WALKTHROUGH",
        "SBB",
        "geometry:",
        "scheme:",
    ] {
        assert!(text.contains(needle), "bootstrap lacks {needle}");
    }
    // And it must parse back to exactly what was generated.
    assert_eq!(Bootstrap::parse(&text).unwrap(), out.bootstrap);
}

#[test]
fn pseudocode_satisfies_the_papers_size_claims() {
    // §3.3: "The pseudocode is less than 500 lines of code that can be
    // implemented by anyone with a basic programming background."
    assert!(ule::verisc::spec::pseudocode_lines() < 500);
    // §1: "writing less than 300 lines of code in any programming
    // language" — our three Rust interpreters each stay within that.
    // (Mechanical check lives in the report; here we check the spec text
    // mentions every instruction.)
    let text = ule::verisc::spec::pseudocode();
    for op in ["LD", "ST", "SBB", "AND"] {
        assert!(text.contains(op));
    }
}

#[test]
fn engines_restore_identically_from_the_printed_document() {
    let system = micro();
    let dump = b"COPY kv (k, v) FROM stdin;\n1\tone\n2\ttwo\n\\.\n".to_vec();
    let out = system.archive(&dump);
    let text = out.bootstrap.to_text();
    let mut scans = out.system_frames.clone();
    scans.extend(out.data_frames.iter().cloned());

    let mut outputs = Vec::new();
    for kind in EngineKind::ALL {
        let (restored, stats) = MicrOlonys::restore_emulated(
            &text,
            &scans,
            EmulationTier::Nested(kind),
            ule::par::ThreadConfig::Serial,
        )
        .expect("emulated restore");
        outputs.push((kind, restored, stats.verisc_steps));
    }
    // Identical results AND identical instruction counts: the machine is
    // fully specified, nothing implementation-defined leaks through.
    for w in outputs.windows(2) {
        assert_eq!(w[0].1, w[1].1, "{:?} vs {:?}", w[0].0, w[1].0);
        assert_eq!(
            w[0].2, w[1].2,
            "step counts differ: {:?} vs {:?}",
            w[0].0, w[1].0
        );
    }
    assert_eq!(outputs[0].1, dump);
}
