//! E14 telemetry contract: the recorder only *observes*. Restored bytes,
//! restore stats, and decode-health counters must be identical whether
//! telemetry is off, on, serial, or running over the `ule_par` pool — and
//! the counters must agree exactly with the faults we inject.

use ule::fault::{Blotch, FaultPlan};
use ule::obs::Telemetry;
use ule::olonys::MicrOlonys;
use ule::par::ThreadConfig;

fn tiny(threads: ThreadConfig) -> MicrOlonys {
    MicrOlonys::test_tiny().with_threads(threads)
}

fn sample_dump() -> Vec<u8> {
    ule::tpch::dump_for_scale(0.0001, 2026)
}

/// Degraded channel scans (one frame dropped, per-frame scan noise) so the
/// identity claim covers inner-RS corrections *and* outer-code recovery.
fn degraded_scans(
    sys: &MicrOlonys,
    out: &ule::olonys::ArchiveOutput,
) -> Vec<ule::raster::GrayImage> {
    out.data_frames
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != 2)
        .map(|(i, f)| sys.medium.scan(f, 90 + i as u64))
        .collect()
}

#[test]
fn telemetry_on_restore_is_byte_identical_to_off() {
    let dump = sample_dump();
    for threads in [ThreadConfig::Serial, ThreadConfig::Fixed(4)] {
        let sys = tiny(threads);
        let out = sys.archive(&dump);
        let scans = degraded_scans(&sys, &out);

        let (bytes_off, stats_off) = sys.restore_native(&scans).expect("telemetry-off restore");
        assert_eq!(bytes_off, dump);

        let tel = Telemetry::enabled();
        let (bytes_on, stats_on) = sys
            .restore_native_traced(&scans, &tel)
            .expect("telemetry-on restore");

        assert_eq!(
            bytes_on, bytes_off,
            "enabled telemetry changed restored bytes at {threads:?}"
        );
        assert_eq!(stats_on.scans, stats_off.scans);
        assert_eq!(stats_on.rs_corrected, stats_off.rs_corrected);
        assert_eq!(stats_on.corrected_symbols, stats_off.corrected_symbols);
        assert_eq!(stats_on.erasure_frames, stats_off.erasure_frames);
        assert_eq!(stats_on.emblems_recovered, stats_off.emblems_recovered);

        // The recorder saw the same work the stats report.
        assert_eq!(
            tel.counter("decode.corrected_symbols"),
            stats_on.rs_corrected as u64
        );
        assert_eq!(
            tel.counter("decode.erasure_frames"),
            stats_on.erasure_frames as u64
        );
    }
}

#[test]
fn counters_are_identical_serial_and_threaded() {
    // The sharded recorder (one shard per worker, absorbed in input order)
    // must make the *trace* thread-count-invariant too: same counters,
    // same gauges, same span call counts. Wall-clock is the only field
    // allowed to differ.
    let dump = sample_dump();
    let sys_serial = tiny(ThreadConfig::Serial);
    let out = sys_serial.archive(&dump);
    let scans = degraded_scans(&sys_serial, &out);

    let tel_serial = Telemetry::enabled();
    let (bytes_serial, _) = sys_serial
        .restore_native_traced(&scans, &tel_serial)
        .expect("serial restore");

    let tel_par = Telemetry::enabled();
    let (bytes_par, _) = tiny(ThreadConfig::Fixed(4))
        .restore_native_traced(&scans, &tel_par)
        .expect("4-thread restore");

    assert_eq!(bytes_par, bytes_serial);
    let (a, b) = (tel_serial.snapshot(), tel_par.snapshot());
    assert_eq!(a.counters, b.counters, "counters differ serial vs 4-thread");
    assert_eq!(a.gauges, b.gauges, "gauges differ serial vs 4-thread");
    let calls = |t: &ule::obs::Trace| -> Vec<(String, u64)> {
        t.spans.iter().map(|(n, s)| (n.clone(), s.calls)).collect()
    };
    assert_eq!(calls(&a), calls(&b), "span call counts differ");
}

#[test]
fn corrected_frame_counter_matches_injected_fault_count() {
    // Counter accuracy: blotch exactly K frames of an otherwise pristine
    // master set; the decode-health counters must report exactly K
    // corrected frames, with every other frame clean.
    let dump = sample_dump();
    let sys = tiny(ThreadConfig::Serial);
    let out = sys.archive(&dump);
    let mut frames = out.data_frames.clone();
    let total = frames.len();
    let damaged_idx = [1usize, 4, 7];
    assert!(total > 8, "want enough frames to damage 3, got {total}");

    let plan = FaultPlan::single(Blotch);
    for (k, &i) in damaged_idx.iter().enumerate() {
        let hit = plan.apply(&frames[i..i + 1], 0.002, 0xE14 + k as u64);
        frames[i] = hit.into_iter().next().unwrap();
    }

    let tel = Telemetry::enabled();
    let (bytes, stats) = sys
        .restore_native_traced(&frames, &tel)
        .expect("damaged restore");
    assert_eq!(bytes, dump, "blotched frames must still decode bit-exact");

    let k = damaged_idx.len() as u64;
    assert_eq!(tel.counter("decode.frames_total"), total as u64);
    assert_eq!(
        tel.counter("decode.frames_corrected"),
        k,
        "exactly {k} frames were damaged"
    );
    assert_eq!(tel.counter("decode.clean_frames"), total as u64 - k);
    assert_eq!(tel.counter("decode.frames_failed"), 0);
    assert_eq!(
        tel.counter("decode.corrected_symbols"),
        stats.rs_corrected as u64
    );
    assert!(stats.rs_corrected >= damaged_idx.len());
    assert_eq!(stats.corrected_symbols, stats.rs_corrected);
}

#[test]
fn disabled_telemetry_records_nothing_on_a_full_pipeline() {
    // `Telemetry::off()` is the default everywhere; a full
    // archive→scan→restore run through it must leave the trace empty.
    let dump = sample_dump();
    let sys = tiny(ThreadConfig::Serial);
    let tel = Telemetry::off();
    let out = sys.archive_traced(&dump, &tel);
    let scans = degraded_scans(&sys, &out);
    let (bytes, _) = sys.restore_native_traced(&scans, &tel).expect("restore");
    assert_eq!(bytes, dump);
    let trace = tel.snapshot();
    assert!(trace.spans.is_empty());
    assert!(trace.counters.is_empty());
    assert!(trace.gauges.is_empty());
}
