//! Pruning-identity property suite for the archival query engine (E13).
//!
//! The zone-map planner is a *performance hint*: for any table and any
//! range predicate, the pruned streaming scan, the unpruned streaming
//! scan and the full-restore + `Database`-load path must produce the
//! same answer — pruning may only skip rows the exact per-row predicate
//! would drop anyway. This suite drives that equivalence over every
//! catalogued table and a generated grid of predicates, under the pinned
//! `PROPTEST_SEED` the CI legs export.

use std::sync::OnceLock;

use proptest::prelude::*;
use ule::tpch::{archival::ShelfQuery, queries, Database};
use ule::vault::zones::{ColumnRange, ZonePredicate};
use ule::vault::{ReelScans, Vault, VaultArchive};
use ule_bench::E13Workload;

struct Shelf {
    vault: Vault,
    archive: VaultArchive,
    scans: ReelScans,
    db: Database,
}

/// One shelf shared by every property case: archiving and scanning the
/// reels dominates the cost, the per-case scans are cheap. The worker
/// pool comes from `ULE_TEST_THREADS` (CI runs serial and 4-threaded;
/// the answers must not notice).
fn shelf() -> &'static Shelf {
    static SHELF: OnceLock<Shelf> = OnceLock::new();
    SHELF.get_or_init(|| {
        let threads = ule::par::ThreadConfig::from_env_or(ule::par::ThreadConfig::Serial);
        let w = E13Workload::new(0.0001, 20260728, threads);
        // The oracle database must be the restored one: answers are
        // compared against "full restore + load", not the generator.
        let (dump, _) = w
            .vault
            .restore_all(&w.archive.bootstrap, &w.scans)
            .expect("full restore");
        let db = ule::tpch::parse_dump(&dump).expect("load restored dump");
        Shelf {
            vault: w.vault,
            archive: w.archive,
            scans: w.scans,
            db,
        }
    })
}

/// Rows of a streamed `COPY` scan: every data line between the header
/// and the `\.` terminator, in arrival order.
fn scan_rows(scan: &ule::vault::TableScan) -> Vec<String> {
    let mut rows = Vec::new();
    let mut seen_header = false;
    for (_, piece) in &scan.pieces {
        let text = std::str::from_utf8(piece).expect("COPY text");
        for line in text.split('\n') {
            if line.is_empty() {
                continue;
            }
            if !seen_header {
                assert!(line.starts_with("COPY "), "first line is the header");
                seen_header = true;
                continue;
            }
            if line == "\\." {
                return rows;
            }
            rows.push(line.to_string());
        }
    }
    panic!("COPY scan never terminated");
}

/// The exact row-level predicate the zone planner is a hint for.
fn row_matches(pred: &ZonePredicate, columns: &[&str], row: &str) -> bool {
    let fields: Vec<&str> = row.split('\t').collect();
    pred.ranges.iter().all(|r| {
        let Some(ci) = columns.iter().position(|c| *c == r.column) else {
            return true;
        };
        let Some(v) = fields.get(ci) else {
            return false;
        };
        let lo_ok = r
            .lo
            .as_deref()
            .is_none_or(|lo| ule::vault::zones::zone_value_cmp(v, lo) != std::cmp::Ordering::Less);
        let hi_ok = r.hi.as_deref().is_none_or(|hi| {
            ule::vault::zones::zone_value_cmp(v, hi) != std::cmp::Ordering::Greater
        });
        lo_ok && hi_ok
    })
}

/// The three-way identity for one `(table, predicate)` point: rows
/// surviving the exact predicate must agree across the pruned scan, the
/// unpruned scan and the loaded database.
fn assert_pruning_identity(table: &str, pred: &ZonePredicate) {
    let s = shelf();
    let (pruned, _) = s
        .vault
        .query_table(&s.archive.bootstrap, &s.scans, table, pred)
        .expect("pruned scan");
    let (unpruned, _) = s
        .vault
        .query_table(&s.archive.bootstrap, &s.scans, table, &ZonePredicate::all())
        .expect("unpruned scan");
    let t = s.db.table(table).expect("table in restored db");
    let columns: Vec<&str> = t.columns.clone();

    let filter = |rows: Vec<String>| -> Vec<String> {
        let mut v: Vec<String> = rows
            .into_iter()
            .filter(|r| row_matches(pred, &columns, r))
            .collect();
        v.sort();
        v
    };
    let from_pruned = filter(scan_rows(&pruned));
    let from_unpruned = filter(scan_rows(&unpruned));
    let from_db = filter(t.rows.iter().map(|r| r.join("\t")).collect());

    assert_eq!(from_pruned, from_unpruned, "{table}: pruned vs unpruned");
    assert_eq!(
        from_unpruned, from_db,
        "{table}: streamed vs restored+loaded"
    );
}

/// All catalogued tables (not just the zone-mapped ones — zone-less
/// entries must take the single-piece path and still agree).
const TABLES: [&str; 8] = [
    "region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
];

/// Date bounds spanning before, inside and after the TPC-H 1992–1998
/// window, so the grid hits prune-nothing, prune-some and prune-all.
const DATES: [&str; 5] = [
    "1000-01-01",
    "1993-06-30",
    "1995-01-01",
    "1997-03-15",
    "2999-12-31",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every table × a generated range on one of its own columns. The
    /// bounds come from real rows, so ranges are never vacuous by type.
    #[test]
    fn any_table_any_column_range_is_prune_safe(
        ti in 0usize..TABLES.len(),
        col_pick in any::<usize>(),
        lo_pick in any::<usize>(),
        hi_pick in any::<usize>(),
    ) {
        let table = TABLES[ti];
        let t = shelf().db.table(table).expect("table");
        prop_assert!(!t.rows.is_empty());
        let ci = col_pick % t.columns.len();
        let a = &t.rows[lo_pick % t.rows.len()][ci];
        let b = &t.rows[hi_pick % t.rows.len()][ci];
        let (lo, hi) = if ule::vault::zones::zone_value_cmp(a, b) == std::cmp::Ordering::Greater {
            (b, a)
        } else {
            (a, b)
        };
        let pred = ZonePredicate::all().with(ColumnRange::between(t.columns[ci], lo, hi));
        assert_pruning_identity(table, &pred);
    }

    /// The query-shaped predicates proper: shipdate/orderdate windows and
    /// quantity bounds on the zone-mapped fact tables.
    #[test]
    fn fact_table_date_windows_are_prune_safe(
        li in 0usize..DATES.len(),
        hi in 0usize..DATES.len(),
        qty in 1i64..51,
    ) {
        let (lo, hi) = if li <= hi { (DATES[li], DATES[hi]) } else { (DATES[hi], DATES[li]) };
        let pred = ZonePredicate::all()
            .with(ColumnRange::between("l_shipdate", lo, hi))
            .with(ColumnRange::at_most("l_quantity", &qty.to_string()));
        assert_pruning_identity("lineitem", &pred);
        let pred = ZonePredicate::all().with(ColumnRange::between("o_orderdate", lo, hi));
        assert_pruning_identity("orders", &pred);
    }
}

/// The end-to-end aggregation triangle on the shared shelf: streamed
/// answers equal restore-and-load answers for each query shape.
#[test]
fn streamed_aggregations_match_loaded_database() {
    let s = shelf();
    let q = ShelfQuery::new(&s.vault, &s.archive.bootstrap, &s.scans);
    for cutoff in ["1000-01-01", "1994-06-30", "2999-12-31"] {
        let (got, _) = q.pricing_summary(cutoff).expect("q1");
        assert_eq!(
            got,
            queries::pricing_summary(&s.db, cutoff).expect("oracle"),
            "{cutoff}"
        );
    }
    for (year, qty) in [("1992", 10), ("1995", 24), ("1998", 50)] {
        let (got, _) = q.forecast_revenue(year, qty).expect("q6");
        assert_eq!(
            got,
            queries::forecast_revenue(&s.db, year, qty).expect("oracle"),
            "{year}/{qty}"
        );
    }
    let (got, _) = q.top_customers(7).expect("q3");
    assert_eq!(got, queries::top_customers(&s.db, 7));
}
