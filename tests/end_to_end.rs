//! Cross-crate integration: the full Figure 2 pipeline on the TPC-H
//! substrate, spanning tpch → compress → emblem → media → core.

use ule::compress::Scheme;
use ule::media::Medium;
use ule::olonys::MicrOlonys;

#[test]
fn tpch_dump_archives_and_restores_bit_exact() {
    let dump = ule::tpch::dump_for_scale(0.00005, 11);
    assert!(dump.len() > 5_000);
    let system = MicrOlonys {
        medium: Medium::test_tiny(),
        scheme: Scheme::Lzss,
        with_parity: true,
        // The CI matrix runs this suite serial and at 4 threads; the
        // restored bytes must not notice (ULE_TEST_THREADS).
        threads: ule::par::ThreadConfig::from_env_or(ule::par::ThreadConfig::Serial),
    };
    let out = system.archive(&dump);
    let scans = system.medium.scan_all(&out.data_frames, 4242);
    let (restored, _) = system.restore_native(&scans).expect("restore");
    assert_eq!(restored, dump);

    // The restored artifact is a loadable database, not just bytes.
    let db = ule::tpch::parse_dump(&restored).expect("parse");
    let original = ule::tpch::parse_dump(&dump).expect("parse original");
    assert_eq!(db, original);
}

#[test]
fn all_schemes_survive_the_media_path() {
    let dump = ule::tpch::dump_for_scale(0.00002, 3);
    for scheme in Scheme::ALL {
        let system = MicrOlonys {
            medium: Medium::test_tiny(),
            scheme,
            with_parity: true,
            threads: ule::par::ThreadConfig::from_env_or(ule::par::ThreadConfig::Serial),
        };
        let out = system.archive(&dump);
        let scans = system.medium.scan_all(&out.data_frames, 7 + scheme as u64);
        let (restored, _) = system.restore_native(&scans).expect("restore");
        assert_eq!(restored, dump, "scheme {scheme}");
    }
}

#[test]
fn archive_stats_are_consistent() {
    let dump = ule::tpch::dump_for_scale(0.00005, 5);
    let system = MicrOlonys::test_tiny();
    let out = system.archive(&dump);
    assert_eq!(out.stats.dump_bytes, dump.len());
    assert!(out.stats.archive_bytes > 0);
    let cap = system.medium.geometry.payload_capacity();
    assert_eq!(
        out.stats.data_emblems,
        out.stats.archive_bytes.div_ceil(cap)
    );
    let per_frame = out.stats.density_per_frame;
    assert!((per_frame - dump.len() as f64 / out.stats.data_emblems as f64).abs() < 1.0);
}

#[test]
fn damaged_and_missing_media_still_restore() {
    // Combine the §3.1 protections: dusty scans AND a lost frame.
    let dump = ule::tpch::dump_for_scale(0.0001, 9);
    let system = MicrOlonys::test_tiny();
    let out = system.archive(&dump);
    assert!(out.data_frames.len() >= 4);
    let mut scans = Vec::new();
    for (i, f) in out.data_frames.iter().enumerate() {
        if i == 1 {
            continue; // this frame is lost forever
        }
        scans.push(system.medium.scan_with_severity(f, 33 + i as u64, 1.5));
    }
    let (restored, stats) = system.restore_native(&scans).expect("restore");
    assert_eq!(restored, dump);
    assert_eq!(stats.emblems_recovered, 1);
}
