//! Guard the README's quickstart commands: the five examples must exist
//! under the names the docs use, and `cargo build --examples` must succeed.
//!
//! CI runs `cargo build --examples` directly as well; this test keeps the
//! guarantee for anyone running only `cargo test`.

use std::path::Path;
use std::process::Command;

const DOCUMENTED_EXAMPLES: [&str; 6] = [
    "figure1_emblem",
    "microfilm_restore",
    "nested_emulation",
    "paper_archive",
    "quickstart",
    "selective_restore",
];

#[test]
fn documented_examples_exist() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for name in DOCUMENTED_EXAMPLES {
        let path = root.join("examples").join(format!("{name}.rs"));
        assert!(
            path.is_file(),
            "README documents `cargo run --example {name}` but {} is missing",
            path.display()
        );
    }
}

#[test]
fn examples_compile() {
    // Invoke the same cargo that is running this test; the build is
    // incremental, so with a warm target dir this is nearly free.
    let status = Command::new(env!("CARGO"))
        .args(["build", "--examples"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .status()
        .expect("failed to spawn cargo build --examples");
    assert!(status.success(), "cargo build --examples failed: {status}");
}
