--
-- PostgreSQL database dump (ULE reproduction of pg_dump plain format)
--

SET statement_timeout = 0;
SET client_encoding = 'UTF8';
SET standard_conforming_strings = on;

CREATE TABLE region (
    r_regionkey integer,
    r_name text,
    r_comment text
);

CREATE TABLE nation (
    n_nationkey integer,
    n_name text,
    n_regionkey integer,
    n_comment text
);

CREATE TABLE supplier (
    s_suppkey integer,
    s_name text,
    s_address text,
    s_nationkey integer,
    s_phone text,
    s_acctbal numeric(15,2),
    s_comment text
);

CREATE TABLE customer (
    c_custkey integer,
    c_name text,
    c_address text,
    c_nationkey integer,
    c_phone text,
    c_acctbal numeric(15,2),
    c_mktsegment text,
    c_comment text
);

CREATE TABLE part (
    p_partkey integer,
    p_name text,
    p_mfgr text,
    p_brand text,
    p_type text,
    p_size integer,
    p_container text,
    p_retailprice numeric(15,2),
    p_comment text
);

CREATE TABLE partsupp (
    ps_partkey integer,
    ps_suppkey integer,
    ps_availqty integer,
    ps_supplycost numeric(15,2),
    ps_comment text
);

CREATE TABLE orders (
    o_orderkey integer,
    o_custkey integer,
    o_orderstatus text,
    o_totalprice numeric(15,2),
    o_orderdate date,
    o_orderpriority text,
    o_clerk text,
    o_shippriority integer,
    o_comment text
);

CREATE TABLE lineitem (
    l_orderkey integer,
    l_partkey integer,
    l_suppkey integer,
    l_linenumber integer,
    l_quantity numeric(15,2),
    l_extendedprice numeric(15,2),
    l_discount numeric(15,2),
    l_tax numeric(15,2),
    l_returnflag text,
    l_linestatus text,
    l_shipdate date,
    l_commitdate date,
    l_receiptdate date,
    l_shipinstruct text,
    l_shipmode text,
    l_comment text
);

COPY region (r_regionkey, r_name, r_comment) FROM stdin;
0	AFRICA	slowly platelets nag
1	AMERICA	never excuses
2	ASIA	ruthlessly theodolites sleep
3	EUROPE	blithely pinto beans unwind slowly foxes nag blithely foxes
4	MIDDLE EAST	blithely platelets doze quickly theodolites integrate
\.

COPY nation (n_nationkey, n_name, n_regionkey, n_comment) FROM stdin;
0	ALGERIA	0	never dependencies wake ruthlessly deposits
1	ARGENTINA	1	slowly instructions wake blithely requests doze blithely dependencies
2	BRAZIL	1	carefully accounts cajole ruthlessly ideas sleep never
3	CANADA	1	quickly accounts cajole carefully pinto beans unwind quickly theodolites
4	EGYPT	4	blithely theodolites unwind never deposits sleep blithely dependencies doze never
5	ETHIOPIA	0	slowly foxes
6	FRANCE	3	blithely theodolites sleep ruthlessly dependencies
7	GERMANY	3	ruthlessly theodolites unwind carefully theodolites cajole daringly pinto beans
8	INDIA	2	blithely theodolites integrate carefully foxes doze carefully ideas
9	INDONESIA	2	never requests
10	IRAN	4	never deposits haggle carefully excuses boost
11	IRAQ	4	slowly deposits detect slowly excuses wake slowly foxes wake slowly
12	JAPAN	2	daringly foxes unwind
13	JORDAN	4	carefully dependencies integrate never theodolites detect quickly platelets
14	KENYA	0	carefully requests sleep daringly
15	MOROCCO	0	slowly packages integrate carefully instructions
16	MOZAMBIQUE	0	carefully instructions sleep carefully deposits
17	PERU	1	carefully pinto beans wake daringly instructions sleep blithely platelets
18	CHINA	2	quickly deposits sleep furiously
19	ROMANIA	3	carefully dependencies haggle carefully platelets unwind
20	SAUDI ARABIA	4	never accounts integrate never pinto beans
21	VIETNAM	2	never instructions doze
22	RUSSIA	3	ruthlessly theodolites
23	UNITED KINGDOM	3	never excuses sleep daringly
24	UNITED STATES	1	quickly pinto beans integrate carefully packages unwind slowly theodolites haggle
\.

COPY supplier (s_suppkey, s_name, s_address, s_nationkey, s_phone, s_acctbal, s_comment) FROM stdin;
1	Supplier#000000001	xtrc3hkqp 7bz5fi53r	23	33-344-270-4336	89.45	daringly foxes cajole slowly excuses sleep daringly dependencies wake carefully foxes haggle
\.

COPY customer (c_custkey, c_name, c_address, c_nationkey, c_phone, c_acctbal, c_mktsegment, c_comment) FROM stdin;
1	Customer#000000001	qmdagues	16	26-537-816-8013	-606.87	HOUSEHOLD	quickly platelets integrate ruthlessly platelets integrate furiously packages nag
2	Customer#000000002	tp2mnh1d42c83x3l	9	19-703-221-4372	8580.59	AUTOMOBILE	daringly platelets nag never accounts doze slowly instructions integrate
3	Customer#000000003	gu3gevan	22	32-705-550-1249	3393.37	HOUSEHOLD	carefully ideas nag carefully excuses doze quickly requests unwind carefully dependencies doze
\.

COPY part (p_partkey, p_name, p_mfgr, p_brand, p_type, p_size, p_container, p_retailprice, p_comment) FROM stdin;
1	almond foxes	Manufacturer#4	Brand#44	PROMO ANODIZED STEEL	38	MED DRUM	1233.45	quickly instructions haggle daringly
2	antique instructions	Manufacturer#2	Brand#23	MEDIUM ANODIZED NICKEL	17	LG CAN	1758.04	quickly requests doze
3	burlywood deposits	Manufacturer#2	Brand#21	LARGE PLATED COPPER	20	LG CASE	1124.31	slowly instructions doze ruthlessly
4	beige accounts	Manufacturer#2	Brand#21	PROMO ANODIZED STEEL	2	LG JAR	1189.32	never pinto beans
\.

COPY partsupp (ps_partkey, ps_suppkey, ps_availqty, ps_supplycost, ps_comment) FROM stdin;
1	1	7288	789.73	slowly excuses haggle blithely platelets haggle daringly ideas boost slowly packages haggle carefully requests detect
1	1	926	282.99	blithely instructions integrate carefully ideas boost ruthlessly theodolites cajole ruthlessly excuses
1	1	1260	734.02	slowly ideas integrate ruthlessly packages nag
1	1	8150	193.93	ruthlessly theodolites unwind quickly packages nag furiously accounts boost never excuses doze ruthlessly requests unwind never platelets
2	1	105	985.40	daringly theodolites doze carefully excuses
2	1	8424	426.66	quickly pinto beans wake daringly platelets
2	1	5460	77.29	never packages unwind blithely accounts cajole carefully
2	1	4811	278.69	quickly deposits cajole carefully pinto beans
3	1	2648	364.99	never platelets detect blithely platelets doze quickly dependencies wake quickly accounts cajole quickly ideas integrate quickly platelets integrate quickly
3	1	6425	929.49	never instructions unwind never excuses doze never excuses nag ruthlessly ideas doze ruthlessly platelets detect quickly excuses detect
3	1	9431	489.65	carefully instructions
3	1	7857	963.81	daringly foxes wake quickly deposits detect furiously deposits detect carefully theodolites boost daringly excuses boost slowly excuses boost blithely excuses
4	1	5232	979.07	quickly pinto beans doze quickly foxes detect daringly deposits sleep furiously instructions wake blithely instructions sleep never deposits doze furiously
4	1	3649	56.56	carefully instructions haggle ruthlessly platelets nag furiously instructions sleep slowly requests integrate
4	1	7372	605.28	ruthlessly ideas integrate quickly accounts wake never
4	1	6471	186.63	furiously deposits boost daringly packages doze daringly excuses boost
\.

COPY orders (o_orderkey, o_custkey, o_orderstatus, o_totalprice, o_orderdate, o_orderpriority, o_clerk, o_shippriority, o_comment) FROM stdin;
1	1	F	8860.28	1993-07-25	4-NOT SPECIFIED	Clerk#000000001	0	furiously pinto beans wake quickly requests doze blithely accounts cajole furiously dependencies unwind
2	3	F	748.42	1996-01-01	5-LOW	Clerk#000000001	0	blithely instructions
3	3	F	28681.82	1994-07-24	5-LOW	Clerk#000000001	0	never requests nag carefully dependencies wake ruthlessly foxes doze carefully
4	3	F	22680.45	1995-10-17	2-HIGH	Clerk#000000001	0	never platelets unwind never ideas haggle never instructions unwind
5	3	F	21213.55	1996-02-21	3-MEDIUM	Clerk#000000002	0	ruthlessly theodolites integrate blithely dependencies boost quickly instructions boost ruthlessly
6	2	F	14917.19	1994-04-24	1-URGENT	Clerk#000000001	0	blithely foxes cajole never excuses cajole carefully ideas detect
7	1	F	17025.51	1994-05-07	5-LOW	Clerk#000000001	0	quickly ideas wake never requests sleep
8	1	F	22159.17	1997-06-23	2-HIGH	Clerk#000000001	0	carefully deposits boost blithely
33	2	O	6916.88	1997-12-09	1-URGENT	Clerk#000000002	0	carefully pinto beans wake slowly ideas unwind quickly deposits
34	1	F	20843.98	1997-06-08	5-LOW	Clerk#000000002	0	ruthlessly platelets doze slowly excuses sleep slowly requests integrate
35	2	F	11315.02	1993-05-07	3-MEDIUM	Clerk#000000002	0	daringly foxes boost never instructions integrate blithely
36	1	F	10877.61	1993-08-08	1-URGENT	Clerk#000000002	0	blithely platelets wake furiously platelets haggle carefully accounts nag never ideas
37	2	F	22347.18	1994-04-05	2-HIGH	Clerk#000000002	0	quickly dependencies boost carefully
38	3	F	21154.61	1994-05-29	4-NOT SPECIFIED	Clerk#000000001	0	slowly packages doze daringly instructions wake slowly deposits
39	2	O	25990.54	1998-03-27	3-MEDIUM	Clerk#000000002	0	never platelets cajole blithely instructions sleep furiously excuses sleep daringly packages cajole daringly
40	2	F	2703.15	1997-07-11	1-URGENT	Clerk#000000001	0	slowly foxes nag carefully theodolites sleep blithely
65	3	F	17131.56	1993-03-16	1-URGENT	Clerk#000000002	0	never foxes
66	3	F	10697.34	1997-07-31	4-NOT SPECIFIED	Clerk#000000001	0	furiously dependencies sleep blithely accounts
67	2	F	20730.53	1995-08-11	4-NOT SPECIFIED	Clerk#000000001	0	daringly pinto beans nag ruthlessly foxes haggle quickly ideas doze quickly theodolites
68	1	F	13390.28	1996-01-07	2-HIGH	Clerk#000000001	0	quickly ideas haggle furiously theodolites unwind never
69	2	O	4850.62	1998-04-03	2-HIGH	Clerk#000000002	0	quickly dependencies haggle daringly pinto beans cajole slowly instructions cajole quickly instructions sleep
70	1	F	10603.34	1993-11-03	1-URGENT	Clerk#000000002	0	never requests detect
71	3	F	22161.06	1995-06-07	2-HIGH	Clerk#000000002	0	ruthlessly ideas integrate
72	2	F	3818.73	1996-06-12	4-NOT SPECIFIED	Clerk#000000001	0	quickly packages cajole ruthlessly pinto beans
97	3	F	28847.93	1993-09-28	3-MEDIUM	Clerk#000000002	0	quickly packages cajole quickly accounts sleep never theodolites
98	3	F	14226.87	1995-10-17	1-URGENT	Clerk#000000001	0	daringly excuses boost ruthlessly pinto beans unwind quickly packages detect slowly accounts wake never
99	1	F	17256.75	1995-03-25	5-LOW	Clerk#000000001	0	quickly foxes doze furiously foxes nag quickly dependencies boost
100	2	F	17398.01	1997-02-22	5-LOW	Clerk#000000002	0	quickly foxes sleep quickly dependencies integrate
101	3	F	525.49	1993-09-14	3-MEDIUM	Clerk#000000002	0	never deposits detect daringly dependencies doze ruthlessly instructions sleep
102	3	F	14448.29	1993-01-06	5-LOW	Clerk#000000001	0	ruthlessly foxes doze never ideas boost furiously deposits wake
\.

COPY lineitem (l_orderkey, l_partkey, l_suppkey, l_linenumber, l_quantity, l_extendedprice, l_discount, l_tax, l_returnflag, l_linestatus, l_shipdate, l_commitdate, l_receiptdate, l_shipinstruct, l_shipmode, l_comment) FROM stdin;
1	3	1	1	10	1063.22	0.07	0.04	R	F	1993-08-08	1993-08-29	1993-09-07	TAKE BACK RETURN	RAIL	furiously excuses detect blithely foxes doze quickly deposits
1	4	1	2	45	7797.06	0.03	0.00	R	F	1993-08-08	1993-08-21	1993-08-28	COLLECT COD	MAIL	blithely instructions
2	2	1	1	4	748.42	0.08	0.05	R	F	1996-01-28	1996-02-24	1996-02-02	COLLECT COD	SHIP	ruthlessly theodolites haggle carefully theodolites boost blithely
3	2	1	1	20	3084.20	0.09	0.03	N	F	1994-08-28	1994-09-24	1994-09-21	NONE	FOB	daringly instructions detect furiously foxes
3	2	1	2	1	145.59	0.05	0.02	N	F	1994-08-03	1994-09-01	1994-08-29	NONE	FOB	carefully packages integrate slowly dependencies integrate never
3	3	1	3	38	6887.72	0.04	0.00	N	F	1994-10-23	1994-11-16	1994-11-12	NONE	FOB	carefully deposits wake
3	3	1	4	11	1513.86	0.04	0.08	N	F	1994-10-01	1994-10-04	1994-10-26	COLLECT COD	FOB	slowly ideas doze carefully ideas nag ruthlessly ideas
3	3	1	5	32	5987.10	0.04	0.06	N	F	1994-10-25	1994-11-13	1994-11-20	NONE	AIR	slowly pinto beans haggle
3	4	1	6	41	7395.12	0.02	0.05	N	F	1994-08-11	1994-09-06	1994-09-06	DELIVER IN PERSON	SHIP	never excuses unwind
3	4	1	7	22	3668.23	0.04	0.06	R	F	1994-08-15	1994-08-31	1994-09-07	DELIVER IN PERSON	AIR	furiously foxes wake
4	2	1	1	32	4097.63	0.08	0.00	N	F	1996-01-16	1996-02-07	1996-01-28	DELIVER IN PERSON	SHIP	daringly pinto beans wake furiously foxes doze
4	1	1	2	25	4909.87	0.06	0.00	N	F	1996-01-29	1996-02-02	1996-02-17	NONE	SHIP	blithely requests doze carefully platelets haggle
4	4	1	3	5	610.29	0.08	0.06	N	F	1995-11-21	1995-12-15	1995-11-24	NONE	SHIP	blithely platelets haggle quickly theodolites nag
4	3	1	4	25	2500.77	0.08	0.06	N	F	1995-11-24	1995-12-12	1995-11-25	TAKE BACK RETURN	FOB	carefully theodolites boost ruthlessly theodolites
4	3	1	5	49	5024.65	0.09	0.01	N	F	1995-10-31	1995-11-01	1995-11-29	COLLECT COD	MAIL	quickly foxes
4	4	1	6	9	1173.26	0.09	0.08	N	F	1996-01-30	1996-02-28	1996-02-17	NONE	AIR	daringly instructions boost ruthlessly
4	3	1	7	39	4363.98	0.08	0.02	N	F	1996-02-15	1996-02-26	1996-02-19	NONE	FOB	ruthlessly excuses integrate never excuses
5	2	1	1	50	8019.10	0.09	0.07	N	F	1996-03-03	1996-03-10	1996-03-10	TAKE BACK RETURN	MAIL	slowly dependencies nag ruthlessly accounts
5	3	1	2	32	6124.67	0.02	0.07	N	F	1996-04-13	1996-05-11	1996-04-15	NONE	MAIL	quickly excuses wake furiously
5	4	1	3	44	7069.78	0.04	0.03	N	F	1996-04-14	1996-05-03	1996-05-12	COLLECT COD	SHIP	never ideas
6	3	1	1	46	6496.85	0.01	0.04	N	F	1994-07-09	1994-08-02	1994-08-08	DELIVER IN PERSON	REG AIR	quickly instructions nag ruthlessly platelets doze
6	3	1	2	34	4643.55	0.04	0.01	N	F	1994-07-18	1994-08-07	1994-07-31	TAKE BACK RETURN	REG AIR	never requests
6	4	1	3	30	3776.79	0.04	0.02	N	F	1994-05-27	1994-05-29	1994-06-10	DELIVER IN PERSON	RAIL	ruthlessly excuses wake daringly excuses integrate never excuses
7	1	1	1	6	1085.52	0.10	0.05	N	F	1994-07-20	1994-08-09	1994-07-30	NONE	RAIL	slowly ideas unwind furiously deposits doze furiously
7	1	1	2	37	6862.90	0.06	0.00	R	F	1994-08-20	1994-09-10	1994-09-02	DELIVER IN PERSON	TRUCK	quickly foxes unwind
7	3	1	3	11	1874.13	0.02	0.02	N	F	1994-05-24	1994-06-12	1994-06-17	COLLECT COD	REG AIR	ruthlessly packages doze daringly accounts integrate
7	2	1	4	19	2229.72	0.02	0.04	N	F	1994-08-18	1994-08-30	1994-09-07	TAKE BACK RETURN	FOB	blithely pinto beans unwind
7	3	1	5	30	4809.18	0.01	0.04	N	F	1994-06-15	1994-06-24	1994-07-05	DELIVER IN PERSON	REG AIR	blithely theodolites sleep furiously ideas
7	2	1	6	1	164.06	0.03	0.00	N	F	1994-05-18	1994-06-07	1994-05-24	TAKE BACK RETURN	FOB	ruthlessly accounts detect
8	1	1	1	22	3795.44	0.10	0.07	N	F	1997-09-12	1997-09-17	1997-09-27	NONE	MAIL	quickly foxes cajole ruthlessly dependencies boost
8	4	1	2	50	9642.95	0.07	0.02	N	F	1997-10-01	1997-10-21	1997-10-18	TAKE BACK RETURN	REG AIR	slowly platelets haggle carefully packages sleep
8	3	1	3	23	3025.90	0.06	0.01	N	F	1997-09-07	1997-10-02	1997-10-05	TAKE BACK RETURN	FOB	slowly foxes sleep carefully requests boost
8	2	1	4	45	5694.88	0.05	0.07	N	F	1997-09-17	1997-10-13	1997-09-20	TAKE BACK RETURN	REG AIR	blithely foxes unwind daringly foxes doze blithely
33	4	1	1	16	2846.96	0.01	0.01	R	O	1998-03-13	1998-03-31	1998-04-07	COLLECT COD	MAIL	daringly platelets haggle never accounts
33	1	1	2	25	4069.92	0.01	0.08	N	O	1998-02-18	1998-02-22	1998-03-05	TAKE BACK RETURN	FOB	quickly theodolites integrate furiously platelets unwind
34	2	1	1	20	2932.66	0.03	0.00	N	F	1997-07-25	1997-08-24	1997-08-06	TAKE BACK RETURN	RAIL	carefully requests nag ruthlessly deposits unwind
34	1	1	2	49	5543.17	0.01	0.04	R	F	1997-09-25	1997-10-01	1997-10-06	TAKE BACK RETURN	SHIP	carefully deposits boost furiously packages haggle
34	1	1	3	37	6094.75	0.02	0.04	R	F	1997-10-02	1997-10-24	1997-10-19	TAKE BACK RETURN	AIR	slowly dependencies unwind slowly excuses
34	3	1	4	48	6273.40	0.03	0.07	N	F	1997-09-26	1997-10-14	1997-10-03	COLLECT COD	REG AIR	blithely pinto beans
35	2	1	1	15	2081.08	0.10	0.06	R	F	1993-07-30	1993-08-06	1993-08-15	NONE	RAIL	blithely theodolites nag ruthlessly pinto beans
35	3	1	2	47	9233.94	0.01	0.08	R	F	1993-07-16	1993-07-20	1993-07-18	TAKE BACK RETURN	AIR	never dependencies wake furiously pinto beans haggle daringly foxes
36	1	1	1	3	310.63	0.00	0.03	N	F	1993-09-05	1993-09-16	1993-09-29	TAKE BACK RETURN	RAIL	daringly instructions
36	1	1	2	6	604.18	0.00	0.00	N	F	1993-12-04	1993-12-11	1993-12-23	NONE	FOB	ruthlessly foxes sleep
36	1	1	3	38	5301.38	0.00	0.01	N	F	1993-08-31	1993-09-19	1993-09-06	COLLECT COD	FOB	quickly deposits sleep ruthlessly instructions haggle carefully instructions
36	3	1	4	25	4661.42	0.05	0.05	N	F	1993-08-25	1993-09-09	1993-08-28	COLLECT COD	REG AIR	furiously theodolites integrate furiously packages doze blithely
37	3	1	1	31	3911.85	0.00	0.01	N	F	1994-05-25	1994-06-18	1994-06-04	TAKE BACK RETURN	REG AIR	carefully ideas integrate quickly
37	4	1	2	24	2999.88	0.04	0.02	N	F	1994-05-11	1994-06-03	1994-06-03	DELIVER IN PERSON	AIR	slowly foxes
37	3	1	3	10	1803.52	0.08	0.03	N	F	1994-06-02	1994-06-11	1994-07-01	DELIVER IN PERSON	REG AIR	furiously pinto beans nag never theodolites wake daringly
37	2	1	4	13	2500.70	0.05	0.00	N	F	1994-06-24	1994-07-12	1994-06-25	TAKE BACK RETURN	AIR	carefully instructions cajole daringly dependencies wake furiously
37	4	1	5	31	4749.66	0.09	0.04	N	F	1994-05-28	1994-06-15	1994-06-16	COLLECT COD	RAIL	never theodolites
37	3	1	6	2	304.86	0.09	0.03	N	F	1994-07-23	1994-07-27	1994-07-31	DELIVER IN PERSON	REG AIR	furiously excuses
37	2	1	7	31	6076.71	0.08	0.03	R	F	1994-05-04	1994-05-14	1994-05-28	COLLECT COD	AIR	never pinto beans
38	4	1	1	49	7318.78	0.05	0.00	N	F	1994-09-11	1994-09-28	1994-09-15	NONE	AIR	quickly instructions haggle daringly
38	2	1	2	26	2680.99	0.08	0.03	R	F	1994-09-11	1994-09-26	1994-09-22	NONE	RAIL	never theodolites
38	4	1	3	25	2658.62	0.08	0.02	N	F	1994-07-29	1994-08-18	1994-08-14	DELIVER IN PERSON	RAIL	ruthlessly instructions integrate ruthlessly accounts wake
38	1	1	4	44	8496.22	0.05	0.08	N	F	1994-07-28	1994-08-04	1994-08-02	TAKE BACK RETURN	TRUCK	quickly instructions doze carefully
39	3	1	1	36	3961.98	0.08	0.01	N	O	1998-04-29	1998-05-28	1998-05-10	COLLECT COD	TRUCK	never accounts boost
39	2	1	2	34	3273.01	0.03	0.02	N	O	1998-03-31	1998-04-09	1998-04-25	DELIVER IN PERSON	RAIL	carefully deposits
39	2	1	3	27	4079.48	0.07	0.05	R	O	1998-06-18	1998-06-25	1998-06-19	DELIVER IN PERSON	SHIP	carefully dependencies detect
39	3	1	4	6	668.57	0.06	0.00	N	O	1998-07-22	1998-07-23	1998-08-03	COLLECT COD	MAIL	quickly platelets doze furiously theodolites
39	3	1	5	49	9232.23	0.10	0.04	N	O	1998-06-11	1998-06-14	1998-07-07	NONE	AIR	daringly requests boost carefully packages nag
39	2	1	6	41	4775.27	0.10	0.03	N	O	1998-07-05	1998-08-04	1998-07-20	TAKE BACK RETURN	TRUCK	never pinto beans detect
40	3	1	1	27	2703.15	0.07	0.00	R	F	1997-09-23	1997-10-14	1997-10-13	DELIVER IN PERSON	REG AIR	quickly foxes unwind slowly
65	1	1	1	19	2705.90	0.09	0.02	N	F	1993-06-05	1993-06-30	1993-06-12	DELIVER IN PERSON	REG AIR	daringly pinto beans haggle carefully instructions doze furiously
65	1	1	2	13	2281.87	0.09	0.02	R	F	1993-07-12	1993-07-24	1993-07-30	COLLECT COD	REG AIR	blithely packages cajole blithely
65	4	1	3	18	2586.60	0.08	0.07	N	F	1993-04-09	1993-05-08	1993-04-29	COLLECT COD	AIR	blithely platelets sleep daringly ideas integrate daringly
65	1	1	4	2	350.13	0.01	0.02	N	F	1993-04-24	1993-05-13	1993-05-22	DELIVER IN PERSON	REG AIR	ruthlessly platelets cajole quickly pinto beans detect furiously
65	2	1	5	39	4908.50	0.06	0.03	N	F	1993-05-02	1993-05-25	1993-05-06	DELIVER IN PERSON	REG AIR	carefully packages
65	4	1	6	27	4298.56	0.01	0.04	N	F	1993-04-21	1993-04-26	1993-05-16	COLLECT COD	REG AIR	never theodolites unwind quickly excuses
66	1	1	1	18	2910.24	0.02	0.02	N	F	1997-10-09	1997-10-20	1997-10-10	TAKE BACK RETURN	MAIL	slowly packages
66	2	1	2	29	4780.04	0.05	0.02	N	F	1997-08-17	1997-08-23	1997-08-19	TAKE BACK RETURN	MAIL	slowly theodolites unwind ruthlessly ideas wake daringly
66	3	1	3	4	487.77	0.06	0.07	R	F	1997-10-14	1997-10-15	1997-10-15	COLLECT COD	RAIL	furiously dependencies doze never foxes nag carefully
66	4	1	4	11	1538.48	0.06	0.08	N	F	1997-09-05	1997-09-23	1997-10-05	COLLECT COD	TRUCK	quickly theodolites haggle blithely requests haggle
66	2	1	5	5	980.81	0.06	0.08	R	F	1997-08-14	1997-09-05	1997-08-27	DELIVER IN PERSON	RAIL	ruthlessly excuses wake carefully excuses haggle blithely foxes
67	4	1	1	25	4070.60	0.07	0.03	N	F	1995-09-21	1995-09-25	1995-10-04	TAKE BACK RETURN	REG AIR	furiously pinto beans wake daringly accounts
67	2	1	2	11	2186.75	0.01	0.07	N	F	1995-10-07	1995-10-19	1995-10-22	COLLECT COD	REG AIR	quickly packages sleep ruthlessly excuses cajole
67	1	1	3	32	6233.56	0.08	0.06	N	F	1995-10-14	1995-10-26	1995-11-10	COLLECT COD	AIR	furiously deposits detect furiously dependencies nag blithely ideas
67	1	1	4	36	6834.02	0.02	0.07	N	F	1995-11-20	1995-12-02	1995-12-01	COLLECT COD	RAIL	daringly dependencies boost
67	2	1	5	12	1405.60	0.04	0.05	R	F	1995-11-05	1995-11-30	1995-12-04	NONE	RAIL	never accounts unwind carefully accounts haggle quickly excuses
68	1	1	1	8	1357.86	0.00	0.07	N	F	1996-01-24	1996-02-18	1996-02-20	TAKE BACK RETURN	MAIL	quickly packages nag furiously ideas detect ruthlessly
68	2	1	2	45	8115.97	0.05	0.08	R	F	1996-04-16	1996-05-08	1996-05-06	DELIVER IN PERSON	FOB	daringly dependencies
68	1	1	3	6	800.25	0.01	0.06	N	F	1996-01-13	1996-01-14	1996-02-09	NONE	FOB	blithely ideas cajole
68	2	1	4	16	1812.38	0.01	0.08	N	F	1996-02-04	1996-03-04	1996-02-27	COLLECT COD	RAIL	never deposits haggle ruthlessly
68	1	1	5	13	1303.82	0.10	0.08	N	F	1996-03-25	1996-04-16	1996-04-19	COLLECT COD	FOB	daringly accounts sleep ruthlessly
69	1	1	1	32	4850.62	0.03	0.04	N	O	1998-06-03	1998-06-11	1998-06-24	COLLECT COD	REG AIR	furiously foxes nag ruthlessly
70	1	1	1	31	3358.23	0.07	0.03	N	F	1994-01-02	1994-01-05	1994-01-06	DELIVER IN PERSON	SHIP	quickly foxes wake quickly pinto beans unwind blithely ideas
70	2	1	2	12	1816.65	0.00	0.06	N	F	1994-02-19	1994-03-03	1994-02-20	DELIVER IN PERSON	RAIL	daringly foxes haggle carefully deposits wake slowly
70	4	1	3	29	4115.33	0.07	0.06	R	F	1993-12-26	1994-01-13	1994-01-14	TAKE BACK RETURN	REG AIR	slowly theodolites nag
70	4	1	4	11	1313.13	0.03	0.06	N	F	1993-11-27	1993-12-14	1993-12-25	NONE	FOB	carefully deposits unwind
71	3	1	1	20	2740.36	0.08	0.01	R	F	1995-06-15	1995-06-24	1995-06-21	COLLECT COD	FOB	quickly foxes unwind quickly excuses
71	2	1	2	26	3843.50	0.04	0.00	N	F	1995-06-24	1995-07-21	1995-07-20	TAKE BACK RETURN	AIR	daringly foxes wake slowly foxes cajole carefully deposits
71	4	1	3	35	5575.99	0.02	0.05	N	F	1995-08-21	1995-09-13	1995-09-18	TAKE BACK RETURN	SHIP	slowly accounts detect carefully requests
71	2	1	4	17	2127.24	0.00	0.08	R	F	1995-08-13	1995-08-16	1995-08-28	TAKE BACK RETURN	SHIP	ruthlessly packages sleep quickly
71	3	1	5	2	242.92	0.00	0.00	N	F	1995-06-10	1995-06-19	1995-06-26	COLLECT COD	RAIL	daringly deposits doze ruthlessly instructions wake quickly ideas
71	3	1	6	28	3549.42	0.09	0.00	R	F	1995-06-13	1995-06-30	1995-07-03	COLLECT COD	MAIL	furiously accounts integrate furiously
71	1	1	7	22	4081.63	0.04	0.04	N	F	1995-07-19	1995-08-03	1995-08-11	NONE	TRUCK	carefully excuses detect
72	3	1	1	31	3818.73	0.05	0.08	N	F	1996-09-17	1996-10-02	1996-10-11	TAKE BACK RETURN	RAIL	slowly dependencies haggle quickly accounts haggle never
97	2	1	1	1	120.60	0.04	0.07	N	F	1993-10-16	1993-10-22	1993-10-29	COLLECT COD	REG AIR	ruthlessly requests
97	2	1	2	23	4572.46	0.01	0.06	N	F	1993-12-01	1993-12-11	1993-12-24	DELIVER IN PERSON	REG AIR	slowly accounts wake slowly instructions detect slowly deposits
97	1	1	3	45	5990.44	0.08	0.01	R	F	1994-01-02	1994-01-05	1994-01-27	TAKE BACK RETURN	MAIL	daringly deposits detect daringly
97	3	1	4	41	4707.12	0.01	0.02	N	F	1993-10-23	1993-11-19	1993-11-19	DELIVER IN PERSON	REG AIR	slowly accounts haggle ruthlessly dependencies doze
97	2	1	5	21	3466.99	0.10	0.06	R	F	1993-10-20	1993-11-07	1993-10-23	DELIVER IN PERSON	AIR	furiously ideas wake ruthlessly requests boost daringly
97	3	1	6	30	5464.92	0.07	0.06	N	F	1993-12-09	1994-01-03	1993-12-11	NONE	TRUCK	quickly pinto beans nag
97	4	1	7	43	4525.40	0.04	0.02	R	F	1994-01-03	1994-01-26	1994-01-29	DELIVER IN PERSON	MAIL	blithely requests wake ruthlessly foxes sleep carefully pinto beans
98	4	1	1	7	1313.41	0.00	0.02	N	F	1995-11-17	1995-12-16	1995-12-07	NONE	MAIL	carefully packages sleep quickly excuses detect carefully theodolites
98	2	1	2	37	3770.63	0.08	0.02	N	F	1996-01-21	1996-01-25	1996-02-17	DELIVER IN PERSON	RAIL	quickly foxes cajole blithely foxes
98	1	1	3	26	3255.79	0.02	0.05	R	F	1995-11-05	1995-11-20	1995-11-29	COLLECT COD	AIR	slowly packages wake daringly deposits cajole carefully requests
98	3	1	4	43	5887.04	0.06	0.08	N	F	1995-12-11	1995-12-20	1995-12-17	TAKE BACK RETURN	RAIL	carefully packages unwind ruthlessly instructions cajole
99	2	1	1	1	198.19	0.08	0.08	N	F	1995-07-19	1995-08-14	1995-07-24	COLLECT COD	SHIP	furiously platelets
99	1	1	2	10	1736.53	0.06	0.06	N	F	1995-06-16	1995-07-09	1995-07-16	TAKE BACK RETURN	MAIL	carefully theodolites haggle ruthlessly instructions wake
99	3	1	3	8	1210.00	0.00	0.03	N	F	1995-06-25	1995-07-14	1995-07-17	COLLECT COD	FOB	ruthlessly excuses wake blithely dependencies unwind furiously platelets
99	2	1	4	49	6130.19	0.09	0.07	R	F	1995-04-03	1995-04-09	1995-04-26	DELIVER IN PERSON	SHIP	carefully foxes haggle never instructions sleep
99	1	1	5	12	1395.22	0.02	0.08	N	F	1995-05-07	1995-05-10	1995-05-29	NONE	FOB	ruthlessly theodolites
99	1	1	6	37	6586.62	0.04	0.03	N	F	1995-07-07	1995-08-04	1995-08-01	DELIVER IN PERSON	TRUCK	blithely packages cajole slowly packages nag daringly platelets
100	1	1	1	47	8180.39	0.09	0.04	N	F	1997-03-02	1997-03-19	1997-03-12	NONE	RAIL	ruthlessly excuses haggle quickly dependencies cajole blithely platelets
100	2	1	2	33	3825.65	0.10	0.01	N	F	1997-04-30	1997-05-23	1997-05-28	TAKE BACK RETURN	SHIP	quickly packages haggle ruthlessly requests cajole
100	3	1	3	29	4825.33	0.04	0.01	N	F	1997-02-24	1997-03-14	1997-03-21	COLLECT COD	FOB	quickly dependencies
100	2	1	4	3	414.96	0.01	0.05	N	F	1997-04-09	1997-04-30	1997-04-15	DELIVER IN PERSON	RAIL	blithely platelets doze carefully requests nag quickly
100	2	1	5	1	151.68	0.04	0.07	N	F	1997-05-28	1997-06-04	1997-06-08	TAKE BACK RETURN	MAIL	quickly accounts nag ruthlessly dependencies haggle ruthlessly theodolites
101	2	1	1	3	525.49	0.06	0.07	R	F	1993-12-21	1994-01-12	1994-01-09	DELIVER IN PERSON	AIR	furiously foxes
102	3	1	1	13	2150.27	0.04	0.08	R	F	1993-03-13	1993-03-23	1993-03-25	NONE	AIR	never packages
102	1	1	2	30	3923.43	0.06	0.02	N	F	1993-04-28	1993-05-19	1993-05-18	COLLECT COD	MAIL	never foxes detect quickly
102	4	1	3	31	3593.17	0.02	0.07	N	F	1993-01-16	1993-01-23	1993-01-23	COLLECT COD	REG AIR	ruthlessly theodolites sleep
102	3	1	4	43	4781.42	0.07	0.08	R	F	1993-03-30	1993-04-25	1993-04-25	DELIVER IN PERSON	REG AIR	blithely dependencies nag blithely accounts integrate
\.

--
-- PostgreSQL database dump complete
--
