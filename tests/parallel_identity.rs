//! Differential determinism: the parallel archive/restore engine must be a
//! pure wall-clock optimisation. The archival format is frozen (the
//! paper's thesis), so the frames written to the medium — and the bytes
//! restored from it — may never depend on how many worker threads ran.
//!
//! `tests/golden_format.rs` pins the absolute bytes; this suite pins the
//! serial/parallel and native/emulated equivalences.

use ule::compress::Scheme;
use ule::media::Medium;
use ule::olonys::{EmulationTier, MicrOlonys};
use ule::par::ThreadConfig;
use ule::verisc::vm::EngineKind;

/// Thread counts the ISSUE's conformance sweep demands.
const SWEEP: [usize; 3] = [2, 4, 8];

fn tiny(threads: ThreadConfig) -> MicrOlonys {
    MicrOlonys::test_tiny().with_threads(threads)
}

fn sample_dump() -> Vec<u8> {
    // Several emblems worth of mixed text so both full and tail groups,
    // data and parity emblems, all get exercised.
    ule::tpch::dump_for_scale(0.0001, 2026)
}

#[test]
fn archive_frames_are_byte_identical_at_any_thread_count() {
    let dump = sample_dump();
    let serial = tiny(ThreadConfig::Serial).archive(&dump);
    assert!(
        serial.data_frames.len() >= 5,
        "want several frames, got {}",
        serial.data_frames.len()
    );
    for threads in SWEEP {
        let par = tiny(ThreadConfig::Fixed(threads)).archive(&dump);
        assert_eq!(
            par.data_frames, serial.data_frames,
            "data frames differ at {threads} threads"
        );
        assert_eq!(
            par.system_frames, serial.system_frames,
            "system frames differ at {threads} threads"
        );
        assert_eq!(par.stats, serial.stats, "stats differ at {threads} threads");
        assert_eq!(
            par.bootstrap, serial.bootstrap,
            "bootstrap differs at {threads} threads"
        );
    }
}

#[test]
fn restored_dump_is_byte_identical_at_any_thread_count() {
    let dump = sample_dump();
    let sys_serial = tiny(ThreadConfig::Serial);
    let out = sys_serial.archive(&dump);
    // Degraded scans (not pristine masters): the parallel decode path must
    // agree with serial even when inner RS corrections and failed scans are
    // in play. Drop one frame so outer-code erasure recovery runs too.
    let scans: Vec<_> = out
        .data_frames
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != 2)
        .map(|(i, f)| sys_serial.medium.scan(f, 90 + i as u64))
        .collect();
    let (serial_dump, serial_stats) = sys_serial.restore_native(&scans).expect("serial restore");
    assert_eq!(serial_dump, dump);
    for threads in SWEEP {
        let sys_par = tiny(ThreadConfig::Fixed(threads));
        let (par_dump, par_stats) = sys_par.restore_native(&scans).expect("parallel restore");
        assert_eq!(
            par_dump, serial_dump,
            "restore differs at {threads} threads"
        );
        assert_eq!(par_stats.scans, serial_stats.scans);
        assert_eq!(par_stats.emblems_recovered, serial_stats.emblems_recovered);
        assert_eq!(par_stats.rs_corrected, serial_stats.rs_corrected);
    }
}

#[test]
fn auto_and_env_configs_are_also_identical() {
    let dump = sample_dump();
    let serial = tiny(ThreadConfig::Serial).archive(&dump);
    let auto = tiny(ThreadConfig::Auto).archive(&dump);
    assert_eq!(auto.data_frames, serial.data_frames);
    let env = tiny(ThreadConfig::from_env_or(ThreadConfig::Fixed(3))).archive(&dump);
    assert_eq!(env.data_frames, serial.data_frames);
}

#[test]
fn emulated_restore_matches_native_restore() {
    // The ULE proof meets the parallel engine: the fully emulated path
    // (here on the nested-VeRisc portability tier) and the threaded
    // native path must restore the same bytes from the same frames.
    // (Micro medium: nested decode costs ~10^4 VeRisc instructions per
    // cell.)
    let sys = MicrOlonys {
        medium: Medium::test_micro(),
        scheme: Scheme::Lzss,
        with_parity: false,
        threads: ThreadConfig::Fixed(4),
    };
    let dump = b"COPY t (k, v) FROM stdin;\n1\tserial\n2\tparallel\n\\.\n".to_vec();
    let out = sys.archive(&dump);

    // Native path at 4 threads, from pristine masters.
    let (native, _) = sys.restore_native(&out.data_frames).expect("native");
    assert_eq!(native, dump);

    // Emulated path from the Bootstrap text plus all frames.
    let text = out.bootstrap.to_text();
    let mut scans = out.system_frames.clone();
    scans.extend(out.data_frames.iter().cloned());
    let (emulated, stats) = MicrOlonys::restore_emulated(
        &text,
        &scans,
        EmulationTier::Nested(EngineKind::MatchBased),
        ThreadConfig::Serial,
    )
    .expect("emulated");
    assert_eq!(
        emulated, native,
        "emulated and native restores must agree bit for bit"
    );
    assert!(stats.verisc_steps > 0);
}

#[test]
fn emulated_restore_is_byte_identical_at_any_thread_count() {
    // The emulated-restore matrix (DESIGN.md §9): per-frame MODecode VM
    // instances fan out over the pool, so the same serial ≡ N-thread
    // identity that protects the native path must hold here — restored
    // bytes, per-frame CRC, and even the guest instruction count.
    let sys = MicrOlonys {
        medium: Medium::test_tiny(),
        scheme: Scheme::Lzss,
        with_parity: false,
        threads: ThreadConfig::Serial,
    };
    let dump = sample_dump();
    let out = sys.archive(&dump);
    assert!(
        out.data_frames.len() >= 3,
        "want several frames for a meaningful fan-out, got {}",
        out.data_frames.len()
    );
    let text = out.bootstrap.to_text();
    let mut scans = out.system_frames.clone();
    scans.extend(out.data_frames.iter().cloned());

    let (serial_dump, serial_stats) =
        MicrOlonys::restore_emulated(&text, &scans, EmulationTier::Threaded, ThreadConfig::Serial)
            .expect("serial emulated restore");
    assert_eq!(serial_dump, dump);

    for threads in SWEEP {
        let (par_dump, par_stats) = MicrOlonys::restore_emulated(
            &text,
            &scans,
            EmulationTier::Threaded,
            ThreadConfig::Fixed(threads),
        )
        .expect("parallel emulated restore");
        assert_eq!(
            par_dump, serial_dump,
            "emulated restore differs at {threads} threads"
        );
        assert_eq!(
            par_stats.frame_crc32, serial_stats.frame_crc32,
            "frame CRC differs at {threads} threads"
        );
        assert_eq!(
            par_stats.guest_steps, serial_stats.guest_steps,
            "guest step count differs at {threads} threads"
        );
    }

    // Parallel-emulated ≡ native on the same frames closes the loop.
    let (native, _) = sys
        .with_threads(ThreadConfig::Fixed(4))
        .restore_native(&out.data_frames)
        .expect("native restore");
    assert_eq!(native, serial_dump, "parallel emulated vs native");
}
