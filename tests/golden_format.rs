//! Golden-vector conformance: the on-medium format is *frozen*.
//!
//! The paper's whole thesis is that the archived bytes must stay readable
//! for decades, so no refactor — parallelisation included — may ever change
//! what lands on the medium. This suite archives a checked-in TPC-H
//! micro-dump (`tests/fixtures/micro_dump.sql`) and asserts, against
//! checked-in golden values:
//!
//! * the exact `ULEA` container bytes (`tests/fixtures/micro_dump.ulea`);
//! * CRC-32s of every emblem print-master stream, per `Medium` preset;
//! * emblem image and frame dimensions, per `Medium` preset;
//! * the data/parity emblem counts of the stream plan;
//! * CRC-32s of fault-injected scans under each medium's canonical
//!   `FaultPlan` (seeded damage is replayable, so E9 campaigns are too).
//!
//! If a change is *meant* to alter the format (a new header version, say),
//! regenerate with `ULE_REGEN_GOLDEN=1 cargo test --test golden_format`
//! and justify the diff in review. Any other golden mismatch is a format
//! regression.
//!
//! **Runtime knob:** encoding and fault-scanning the three *production*
//! media (A4 paper is ~33 MP per emblem) costs tens of seconds, so by
//! default this suite pins only the cheap observables (geometry, plan
//! counts, the full tiny-medium pipeline) and skips the production-media
//! stream/fault CRCs; the comparison is key-based, so skipped keys are
//! simply not checked. Set `ULE_GOLDEN_FULL=1` to compute and compare
//! every golden line (CI's `e10-smoke` leg does; regeneration always
//! runs full so the checked-in file never loses lines).

use std::fmt::Write as _;
use std::path::PathBuf;
use ule::compress::Scheme;
use ule::emblem::stream::stream_crc32;
use ule::emblem::{encode_stream_with, EmblemKind};
use ule::gf256::crc::crc32;
use ule::media::Medium;
use ule::olonys::MicrOlonys;
use ule::par::ThreadConfig;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn micro_dump() -> Vec<u8> {
    let path = fixture_path("micro_dump.sql");
    if !path.exists() && std::env::var("ULE_REGEN_GOLDEN").is_ok() {
        // First-time bootstrap only: freeze a TPC-H micro-dump as the
        // conformance input. Once checked in, the file is the reference —
        // regeneration never overwrites it, so later generator changes
        // cannot silently move the goalposts.
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, ule::tpch::dump_for_scale(0.00002, 7)).unwrap();
    }
    std::fs::read(path).expect("checked-in micro dump")
}

/// The media presets whose on-medium format is pinned.
fn media_presets() -> Vec<Medium> {
    vec![
        Medium::paper_a4_600dpi(),
        Medium::microfilm_16mm(),
        Medium::cinema_35mm(),
        Medium::test_tiny(),
    ]
}

fn slug(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Whether the expensive production-media sweep is on (see module docs).
fn full_sweep() -> bool {
    std::env::var("ULE_GOLDEN_FULL").is_ok_and(|v| v != "0")
        || std::env::var("ULE_REGEN_GOLDEN").is_ok()
}

/// Compute golden observables as `key = value` lines — every line when
/// `full` is set, only the cheap ones otherwise. The thread config is
/// taken from `ULE_TEST_THREADS` (CI runs this serial and at 4 threads),
/// which must not change a single line — byte-identity of the parallel
/// engine is part of what these vectors freeze.
fn compute_observables(full: bool) -> String {
    let threads = ThreadConfig::from_env_or(ThreadConfig::Serial);
    let dump = micro_dump();
    let archive = ule::compress::compress(Scheme::Lzss, &dump);
    let mut out = String::new();
    writeln!(out, "dump_len = {}", dump.len()).unwrap();
    writeln!(out, "dump_crc32 = {:08x}", crc32(&dump)).unwrap();
    writeln!(out, "ulea_len = {}", archive.len()).unwrap();
    writeln!(out, "ulea_crc32 = {:08x}", crc32(&archive)).unwrap();

    for medium in media_presets() {
        let key = slug(medium.name);
        let geom = medium.geometry;
        writeln!(
            out,
            "{key}.frame = {}x{}",
            medium.frame_width, medium.frame_height
        )
        .unwrap();
        writeln!(
            out,
            "{key}.emblem = {}x{}",
            geom.image_width(),
            geom.image_height()
        )
        .unwrap();
        writeln!(out, "{key}.payload_capacity = {}", geom.payload_capacity()).unwrap();
        let plan = ule::emblem::stream::plan(&geom, archive.len(), true);
        writeln!(
            out,
            "{key}.emblems = {}+{}",
            plan.data_emblems, plan.parity_emblems
        )
        .unwrap();
        // Everything below renders full-size frames; on the production
        // media that is the whole cost of this suite (skipped unless the
        // full sweep is on; the tiny medium is always pinned).
        if !full && medium.name != "test medium" {
            continue;
        }
        let images = encode_stream_with(&geom, EmblemKind::Data, &archive, true, threads);
        writeln!(out, "{key}.stream_crc32 = {:08x}", stream_crc32(&images)).unwrap();

        // Fault-injected scans under the medium's canonical decay scenario
        // at severity 0.5: seeded fault injection is part of the frozen
        // surface, so a drifting damage pattern — which would move every
        // recorded E9 envelope — fails conformance here first. Frame
        // counts are the minimum at which *every* model in the plan
        // engages at this severity (reorder needs >= 2 survivors of the
        // plan's earlier drops: floor(0.5*8)=4 dropped leaves 4, then
        // floor(0.5*4)=2 reordered); plans without reorder pin on 2
        // scans to keep the big-frame media cheap.
        let plan = medium.canonical_fault_plan();
        let label = plan.label();
        let n = match (label.contains("reorder"), label.contains("loss")) {
            (true, true) => 8,
            (true, false) => 4,
            _ => 2,
        };
        let frames = medium.print_all_with(&images[..n.min(images.len())], threads);
        let faulted = medium.scan_with_faults(&frames, 2033, &plan, 0.5, threads);
        writeln!(out, "{key}.fault_plan = {}", plan.label()).unwrap();
        writeln!(out, "{key}.fault_scans = {}", faulted.len()).unwrap();
        writeln!(
            out,
            "{key}.fault_scan_crc32 = {:08x}",
            stream_crc32(&faulted)
        )
        .unwrap();
    }

    // Full pipeline on the tiny medium: printed frames (data + system) and
    // the Bootstrap text, i.e. everything a restorer would be handed.
    let sys = MicrOlonys::test_tiny().with_threads(threads);
    let arch = sys.archive(&dump);
    writeln!(out, "tiny.data_frames = {}", arch.data_frames.len()).unwrap();
    writeln!(out, "tiny.system_frames = {}", arch.system_frames.len()).unwrap();
    writeln!(
        out,
        "tiny.data_frames_crc32 = {:08x}",
        stream_crc32(&arch.data_frames)
    )
    .unwrap();
    writeln!(
        out,
        "tiny.system_frames_crc32 = {:08x}",
        stream_crc32(&arch.system_frames)
    )
    .unwrap();
    writeln!(
        out,
        "tiny.bootstrap_crc32 = {:08x}",
        crc32(arch.bootstrap.to_text().as_bytes())
    )
    .unwrap();
    out
}

#[test]
fn ulea_container_bytes_are_frozen() {
    let archive = ule::compress::compress(Scheme::Lzss, &micro_dump());
    let golden_path = fixture_path("micro_dump.ulea");
    if std::env::var("ULE_REGEN_GOLDEN").is_ok() {
        std::fs::write(&golden_path, &archive).expect("write golden container");
        return;
    }
    let golden = std::fs::read(&golden_path).expect("checked-in golden container");
    assert_eq!(
        archive.len(),
        golden.len(),
        "ULEA container length drifted (format regression)"
    );
    if archive != golden {
        let first = archive
            .iter()
            .zip(&golden)
            .position(|(a, b)| a != b)
            .unwrap();
        panic!("ULEA container bytes drifted, first difference at offset {first}");
    }
    // The container must still decode to the exact dump, of course.
    assert_eq!(ule::compress::decompress(&archive).unwrap(), micro_dump());
}

#[test]
fn emblem_streams_and_frame_geometry_are_frozen() {
    let full = full_sweep();
    let actual = compute_observables(full);
    let golden_path = fixture_path("golden_format.txt");
    if std::env::var("ULE_REGEN_GOLDEN").is_ok() {
        // Regeneration always computes the full sweep (full_sweep() is
        // true whenever ULE_REGEN_GOLDEN is set), so the checked-in file
        // keeps every line even when regenerated from a default run.
        std::fs::write(&golden_path, &actual).expect("write golden observables");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).expect("checked-in golden observables");
    // Key-based comparison: every computed observable must match its
    // golden line (a failure names the drifted key), and every golden
    // key must be computed when the full sweep is on. In the default
    // (cheap) mode the production-media CRC keys are simply not
    // computed, hence not checked — see the module docs.
    let golden_map: std::collections::HashMap<&str, &str> = golden
        .lines()
        .filter_map(|l| l.split_once(" = "))
        .map(|(k, v)| (k.trim(), v.trim()))
        .collect();
    let mut checked = 0usize;
    for line in actual.lines() {
        let (k, v) = line
            .split_once(" = ")
            .expect("observable lines are key = value");
        let g = golden_map
            .get(k.trim())
            .unwrap_or_else(|| panic!("observable {k:?} missing from golden file"));
        assert_eq!(
            v.trim(),
            *g,
            "golden observable {k:?} drifted (format regression)"
        );
        checked += 1;
    }
    if full {
        assert_eq!(
            checked,
            golden_map.len(),
            "full sweep must cover every golden line"
        );
    }
}
