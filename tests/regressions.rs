//! Replay of minimised fuzz findings (`DESIGN.md` §13).
//!
//! Every crash the structured-fuzz harness has ever found is frozen as a
//! fixture under `tests/fixtures/regressions/`, named
//! `<target-name>__<description>.bin`, and replayed here through the same
//! [`ule_fuzz::FuzzTarget`] adapter that found it. A panic in this test
//! means a fixed bug has been reintroduced.

use std::fs;
use std::path::Path;

#[test]
fn regression_corpus_replays_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/regressions");
    let targets = ule_fuzz::all_targets();
    let mut replayed = 0usize;
    let mut entries: Vec<_> = fs::read_dir(&dir)
        .expect("regressions dir")
        .map(|e| e.expect("dir entry").path())
        .collect();
    entries.sort();
    for path in entries {
        if path.extension().map_or(true, |e| e != "bin") {
            continue;
        }
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("utf-8 fixture name");
        let (target_name, _) = stem
            .split_once("__")
            .unwrap_or_else(|| panic!("{stem}: fixtures are named <target>__<description>.bin"));
        let target = targets
            .iter()
            .find(|t| t.name() == target_name)
            .unwrap_or_else(|| panic!("{stem}: no fuzz target named {target_name}"));
        let input = fs::read(&path).expect("read fixture");
        // Must return without panicking; the structured error (if any) is
        // asserted by the finding's unit test in the parser's own crate.
        target.run(&input);
        replayed += 1;
    }
    assert!(
        replayed >= 2,
        "regression corpus unexpectedly small: {replayed} fixtures"
    );
}
